//! Live, lock-free metrics: sharded counters, gauges, log-linear
//! histograms, and a named registry with mergeable snapshots.
//!
//! This is the *metrics* half of the observability story, complementing
//! the *event-log* half ([`crate::Recorder`] + JSONL). Events are exact
//! and replayable but cost O(events) storage and can only answer
//! questions after the run; the registry costs O(metrics) storage — a
//! histogram is a fixed array of buckets no matter how many values it
//! absorbs — and can be snapshotted at any moment while recording
//! continues.
//!
//! ## Hot-path cost model
//!
//! Recording never takes a lock and never allocates:
//!
//! - [`Counter::add`] is one relaxed atomic add on a per-thread shard
//!   (shards are cache-line padded, so concurrent writers do not bounce a
//!   line between cores).
//! - [`Histogram::record`] is a branch-free bucket-index computation
//!   (leading-zeros + shift) plus four relaxed atomic RMWs.
//! - [`Gauge::set`] is one relaxed atomic store.
//!
//! Name lookup happens only at registration time
//! ([`MetricsRegistry::counter`] & co. take a mutex and return a shared
//! handle); hot paths hold the `Arc` and never touch the registry again.
//! `obs_bench` measures the per-record cost in nanoseconds.
//!
//! ## Histogram bucket scheme
//!
//! Log-linear, like HdrHistogram: values 0..128 get exact unit buckets;
//! above that, each power-of-two range splits into 128 linear
//! sub-buckets, so the relative bucket width never exceeds 1/128 (~0.8%).
//! Percentile estimates therefore land within one bucket width of the
//! exact order statistic, without storing samples. Values are plain
//! `u64` ticks — callers pick the unit (this workspace records latencies
//! in microseconds). A histogram is ~58 KiB of buckets regardless of how
//! many values it has seen.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Number of linear sub-buckets per power-of-two range; also the bound
/// below which every value gets its own exact bucket.
const SUB: usize = 128;
/// log2 of [`SUB`].
const SUB_BITS: usize = 7;
/// Total bucket count: `SUB` exact unit buckets plus `SUB` linear
/// sub-buckets for each of the 57 power-of-two levels 2^7..2^63.
const NBUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Counter shards; a power of two so the shard pick is a mask.
const SHARDS: usize = 8;

#[repr(align(64))]
struct PaddedU64(AtomicU64);

thread_local! {
    static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// This thread's counter shard, assigned round-robin on first use.
fn shard_index() -> usize {
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(idx);
        }
        idx
    })
}

/// A monotone event counter, sharded across cache-line-padded atomics so
/// concurrent writers on different cores do not contend.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    /// Adds `n`. Lock-free: one relaxed atomic add on this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A last-write-wins signed gauge (queue depths, in-flight counts, …).
#[derive(Default)]
pub struct Gauge {
    value: std::sync::atomic::AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

/// Maps a value to its histogram bucket index. Public so the
/// `cuttlefish-check` model checker can drive its instrumented histogram
/// mirror through the exact bucket math the production histogram uses.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= SUB_BITS
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        (exp - SUB_BITS) * SUB + SUB + sub
    }
}

/// Lower bound and width of a bucket (shared with `cuttlefish-check`).
pub fn bucket_lo_width(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, 1)
    } else {
        let level = idx / SUB - 1;
        let sub = (idx % SUB) as u64;
        ((SUB as u64 + sub) << level, 1u64 << level)
    }
}

/// The value a bucket reports for percentiles: the exact value for unit
/// buckets, the midpoint for wider ones (shared with `cuttlefish-check`).
pub fn bucket_representative(idx: usize) -> f64 {
    let (lo, width) = bucket_lo_width(idx);
    if width == 1 {
        lo as f64
    } else {
        lo as f64 + width as f64 / 2.0
    }
}

/// A constant-memory log-linear histogram (see the module docs for the
/// bucket scheme). Recording is lock-free; percentiles come from a
/// [`HistogramSnapshot`] without ever storing individual samples.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value. Lock-free, allocation-free.
    ///
    /// The field order is load-bearing: sum/max/min are updated *before*
    /// the bucket increment, and the increment is a `Release` store paired
    /// with the `Acquire` bucket loads in [`Histogram::snapshot`]. A
    /// snapshot that observes a value's bucket therefore also observes its
    /// min/max/sum contribution, so a mid-stream snapshot can never report
    /// a percentile outside `[min, max]` (the torn-snapshot bug the
    /// `cuttlefish-check` model checker catches when the order is
    /// reversed — see `histogram_torn` in that crate).
    #[inline]
    pub fn record(&self, v: u64) {
        // RELAXED: these three land before the Release increment below and
        // become visible with it; no reader orders through them directly.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
    }

    /// Records a non-negative float, rounding to the nearest tick
    /// (negative or non-finite values clamp to 0).
    #[inline]
    pub fn record_f64(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.record(v.round() as u64);
    }

    /// Records a duration in microsecond ticks — the workspace convention
    /// for latency histograms.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// The width of the bucket that `v` falls into: the quantization
    /// error bound for percentile estimates near `v`.
    pub fn bucket_width(v: u64) -> u64 {
        bucket_lo_width(bucket_index(v)).1
    }

    /// Snapshots the current state. Recording may continue concurrently;
    /// the snapshot is then approximately consistent: bucket counts are
    /// each exact, a racing `record` may already show in `sum` but not yet
    /// in a bucket, and `count` is always `Σ buckets`. What a mid-stream
    /// snapshot can *not* show is a bucketed value without its min/max
    /// bounds — the `Acquire` bucket loads pair with the `Release`
    /// increment in [`Histogram::record`], so `min <= percentile(p) <= max`
    /// holds on every snapshot with `count > 0` (model-checked and
    /// thread-tested; see `crates/check`). With writers quiesced the
    /// snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            // Acquire pairs with the Release increment in `record`: any
            // observed count makes that record's earlier min/max/sum
            // updates visible to the loads below.
            let n = b.load(Ordering::Acquire);
            if n > 0 {
                buckets.push((i as u32, n));
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            // RELAXED: ordered after the Acquire bucket loads by program
            // order; the acquired edge already publishes these fields.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

/// A point-in-time copy of one histogram: sparse non-empty buckets plus
/// exact count/sum/max/min. Mergeable and JSON-serializable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, index-ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (in ticks).
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Exact minimum recorded value (0 when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Percentile estimate in ticks, within one bucket width of the exact
    /// order statistic. Matches the sort-based convention used elsewhere
    /// in the workspace: the element at (0-based) index
    /// `round((count - 1) · p)` of the sorted samples. The estimate is
    /// clamped to `[min, max]` — a wide bucket's midpoint representative
    /// can otherwise stick out past the true extremes the snapshot already
    /// knows exactly.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as u64 + 1;
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                // Manual clamp: `f64::clamp` panics when min > max, and a
                // merged snapshot from hostile JSON could present that.
                return bucket_representative(idx as usize)
                    .max(self.min as f64)
                    .min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Folds `other` into `self` (bucket-count addition, exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *merged.entry(idx).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = if self.count == other.count {
                other.min
            } else {
                self.min.min(other.min)
            };
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("max", Json::Num(self.max as f64)),
            ("min", Json::Num(self.min as f64)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<HistogramSnapshot> {
        let mut buckets = Vec::new();
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            buckets.push((pair[0].as_u64()? as u32, pair[1].as_u64()?));
        }
        Some(HistogramSnapshot {
            buckets,
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
            min: v.get("min")?.as_u64()?,
        })
    }
}

/// Formats a metric name with Prometheus-style labels:
/// `labeled("serve_requests_total", &[("outcome", "ok")])` →
/// `serve_requests_total{outcome="ok"}`. The result is a plain registry
/// key; the exporter passes it through unchanged.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of live metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a short mutex
/// and returns a shared handle; recording through the handle is lock-free
/// and never touches the registry again. [`MetricsRegistry::snapshot`]
/// captures every metric without stopping writers.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.lock()
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.lock()
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshots every registered metric. Writers are not blocked; see
    /// [`Histogram::snapshot`] for the consistency model.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let (counters, gauges, histograms) = {
            let inner = self.lock();
            (
                inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
                inner
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
            )
        };
        RegistrySnapshot {
            counters: counters.into_iter().map(|(k, c)| (k, c.get())).collect(),
            gauges: gauges.into_iter().map(|(k, g)| (k, g.get())).collect(),
            histograms: histograms
                .into_iter()
                .map(|(k, h)| (k, h.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A point-in-time copy of a whole registry, name-sorted. Mergeable
/// (counters and histogram buckets add; gauges keep the other side when
/// absent locally, else sum) and JSON-round-trippable, so per-process
/// snapshots can be combined into fleet totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up a counter total.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Folds `other` into `self`: counters and histograms add exactly,
    /// gauges sum (document per-gauge semantics at the call site if that
    /// is not what a merged view should mean).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (k, v) in &other.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> = self.gauges.drain(..).collect();
        for (k, v) in &other.gauges {
            *gauges.entry(k.clone()).or_insert(0) += v;
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (k, h) in &other.histograms {
            histograms.entry(k.clone()).or_default().merge(h);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// Encodes the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a snapshot from [`RegistrySnapshot::to_json`] output.
    pub fn from_json(v: &Json) -> Option<RegistrySnapshot> {
        let obj_pairs = |key: &str| -> Option<Vec<(String, Json)>> {
            match v.get(key)? {
                Json::Obj(pairs) => Some(pairs.clone()),
                _ => None,
            }
        };
        let mut counters = Vec::new();
        for (k, val) in obj_pairs("counters")? {
            counters.push((k, val.as_u64()?));
        }
        let mut gauges = Vec::new();
        for (k, val) in obj_pairs("gauges")? {
            let f = val.as_f64()?;
            gauges.push((k, f as i64));
        }
        let mut histograms = Vec::new();
        for (k, val) in obj_pairs("histograms")? {
            histograms.push((k, HistogramSnapshot::from_json(&val)?));
        }
        Some(RegistrySnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut probes: Vec<u64> = vec![0, 1, u64::MAX];
        for shift in 1..64u32 {
            let p = 1u64 << shift;
            probes.extend([p - 1, p, p + 1]);
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < NBUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "not monotone at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0u64, 1, 17, 127, 128, 129, 1000, 123_456, u64::MAX / 3] {
            let idx = bucket_index(v);
            let (lo, width) = bucket_lo_width(idx);
            assert!(
                v >= lo && v < lo.saturating_add(width).max(lo + 1),
                "{v} outside bucket [{lo}, {lo}+{width})"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 128);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 127);
        // Every value below SUB has its own bucket and reports exactly.
        assert_eq!(Histogram::bucket_width(100), 1);
        assert_eq!(snap.percentile(0.0), 0.0);
        assert_eq!(snap.percentile(1.0), 127.0);
    }

    #[test]
    fn percentiles_match_exact_sort_within_one_bucket_width() {
        // The satellite-pinning test: a deterministic heavy-tailed sample,
        // exact sort-based percentiles vs histogram estimates.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 9_876_543u64;
        for _ in 0..10_000 {
            // xorshift; spread over ~4 orders of magnitude.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(50 + x % 200_000);
        }
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [0.5, 0.95, 0.99] {
            let exact = sorted[((sorted.len() as f64 - 1.0) * p).round() as usize];
            let est = snap.percentile(p);
            let width = Histogram::bucket_width(exact) as f64;
            assert!(
                (est - exact as f64).abs() <= width,
                "p{p}: est {est} vs exact {exact} (bucket width {width})"
            );
        }
        assert_eq!(snap.max, *sorted.last().unwrap());
        assert_eq!(snap.min, sorted[0]);
        assert_eq!(snap.count, sorted.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn concurrent_record_vs_snapshot_coherence() {
        // The real-threads half of the satellite test (the model-checked
        // half lives in `cuttlefish-check`): writers hammer one histogram
        // while the main thread snapshots mid-stream. Every snapshot must
        // satisfy count == Σ buckets and min <= p50 <= max; the final
        // quiesced snapshot must be exact.
        let h = Arc::new(Histogram::new());
        const WRITERS: usize = 4;
        let per: u64 = if cfg!(miri) { 64 } else { 20_000 };
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    let mut x = 0x9e37_79b9_u64 ^ (w as u64 + 1);
                    let (mut sum, mut mn, mut mx) = (0u64, u64::MAX, 0u64);
                    for _ in 0..per {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = 50 + x % 200_000;
                        h.record(v);
                        sum += v;
                        mn = mn.min(v);
                        mx = mx.max(v);
                    }
                    (sum, mn, mx)
                })
            })
            .collect();
        let mut mid_stream_snaps = 0usize;
        loop {
            let writers_live = handles.iter().any(|j| !j.is_finished());
            let snap = h.snapshot();
            let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
            assert_eq!(snap.count, bucket_total, "count torn from buckets");
            if snap.count > 0 {
                assert!(snap.min <= snap.max, "min {} > max {}", snap.min, snap.max);
                assert_ne!(snap.min, u64::MAX, "min torn (bucket visible, min not)");
                let p50 = snap.percentile(0.5);
                assert!(
                    snap.min as f64 <= p50 && p50 <= snap.max as f64,
                    "p50 {p50} outside [{}, {}]",
                    snap.min,
                    snap.max
                );
                assert!(snap.min >= 50 && snap.max < 50 + 200_000);
            }
            mid_stream_snaps += 1;
            if !writers_live {
                break;
            }
        }
        let (mut sum, mut mn, mut mx) = (0u64, u64::MAX, 0u64);
        for j in handles {
            let (s, lo, hi) = j.join().expect("writer panicked");
            sum += s;
            mn = mn.min(lo);
            mx = mx.max(hi);
        }
        let fin = h.snapshot();
        assert_eq!(fin.count, WRITERS as u64 * per);
        assert_eq!(fin.sum, sum);
        assert_eq!(fin.min, mn);
        assert_eq!(fin.max, mx);
        // Not an assertion on scheduling, just a sanity signal that the
        // loop above really did observe the histogram at least once.
        assert!(mid_stream_snaps > 0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("hits"), Some(2));
        let h = reg.histogram("lat_us");
        h.record(10);
        let g = reg.gauge("depth");
        g.set(3);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), Some(3));
        assert_eq!(snap.histogram("lat_us").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("n").add(10);
        b.counter("n").add(5);
        b.counter("only_b").add(1);
        for v in [3u64, 300, 30_000] {
            a.histogram("h").record(v);
            b.histogram("h").record(v * 2);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let seq = MetricsRegistry::new();
        seq.counter("n").add(15);
        seq.counter("only_b").add(1);
        for v in [3u64, 300, 30_000] {
            seq.histogram("h").record(v);
            seq.histogram("h").record(v * 2);
        }
        let expect = seq.snapshot();
        assert_eq!(merged.counters, expect.counters);
        assert_eq!(
            merged.histogram("h").unwrap().buckets,
            expect.histogram("h").unwrap().buckets
        );
        assert_eq!(
            merged.histogram("h").unwrap().sum,
            expect.histogram("h").unwrap().sum
        );
        assert_eq!(
            merged.histogram("h").unwrap().min,
            expect.histogram("h").unwrap().min
        );
        assert_eq!(
            merged.histogram("h").unwrap().max,
            expect.histogram("h").unwrap().max
        );
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter(&labeled("req", &[("outcome", "ok")])).add(3);
        reg.gauge("depth").set(-2);
        let h = reg.histogram("lat_us");
        for v in [1u64, 200, 40_000, 900_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let back = RegistrySnapshot::from_json(&snap.to_json()).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(
            labeled("x_total", &[("a", "1"), ("b", "two")]),
            "x_total{a=\"1\",b=\"two\"}"
        );
    }

    #[test]
    fn empty_histogram_is_sane() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(0.99), 0.0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn record_f64_clamps_garbage() {
        let h = Histogram::new();
        h.record_f64(-5.0);
        h.record_f64(f64::NAN);
        h.record_f64(2.6);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 3);
    }
}
