//! Recorder sinks and the span timing guard.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// A sink for telemetry events.
///
/// Recorders take `&self` so one recorder can be threaded through a whole
/// training stack as `&dyn Recorder` without mutable-borrow contention;
/// implementations use interior mutability where they need state.
pub trait Recorder {
    /// Consumes one event.
    fn record(&self, event: Event);

    /// Number of events recorded so far, per event kind, sorted by kind.
    fn event_counts(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Flushes buffered output to its destination. Default: no-op.
    fn flush(&self) {}
}

/// Discards every event. The default recorder: instrumented code paths pay
/// one virtual call per event and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory; the sink used by tests and in-process
/// consumers.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("telemetry mutex poisoned")
            .clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry mutex poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of events matching a predicate.
    pub fn filtered(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.events
            .lock()
            .expect("telemetry mutex poisoned")
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        self.events
            .lock()
            .expect("telemetry mutex poisoned")
            .push(event);
    }

    fn event_counts(&self) -> Vec<(String, u64)> {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for event in self.events.lock().expect("telemetry mutex poisoned").iter() {
            *counts.entry(event.kind().to_string()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Appends events to a file as JSON Lines, one event per line.
///
/// Opens the file in append mode so successive runs can share one log;
/// writes are buffered and flushed on [`Recorder::flush`] and on drop.
pub struct JsonlRecorder {
    writer: Mutex<BufWriter<File>>,
    counts: Mutex<BTreeMap<String, u64>>,
}

impl JsonlRecorder {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error when the file cannot be opened.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
            counts: Mutex::new(BTreeMap::new()),
        })
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        *self
            .counts
            .lock()
            .expect("telemetry mutex poisoned")
            .entry(event.kind().to_string())
            .or_insert(0) += 1;
        let mut writer = self.writer.lock().expect("telemetry mutex poisoned");
        // Telemetry must never take down a training run; swallow I/O
        // errors here and let flush-on-drop surface persistent failures
        // as missing lines rather than panics.
        let _ = writeln!(writer, "{}", event.to_jsonl());
    }

    fn event_counts(&self) -> Vec<(String, u64)> {
        self.counts
            .lock()
            .expect("telemetry mutex poisoned")
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect()
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .expect("telemetry mutex poisoned")
            .flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A scope guard that emits [`Event::SpanClosed`] with the elapsed
/// wall-clock time when dropped.
///
/// Created by [`span`]; timing uses [`Instant`], so it is monotonic and
/// immune to wall-clock adjustments.
pub struct Span<'a> {
    name: &'static str,
    start: Instant,
    recorder: &'a dyn Recorder,
}

impl Span<'_> {
    /// Elapsed time since the span opened, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.record(Event::SpanClosed {
            name: self.name.to_string(),
            wall_ms: self.elapsed_ms(),
        });
    }
}

/// Opens a named timing span; the returned guard records a
/// [`Event::SpanClosed`] on drop.
///
/// ```
/// use cuttlefish_telemetry::{span, MemoryRecorder};
/// let rec = MemoryRecorder::new();
/// {
///     let _guard = span("profiling", &rec);
///     // ... timed work ...
/// }
/// assert_eq!(rec.len(), 1);
/// ```
pub fn span<'a>(name: &'static str, recorder: &'a dyn Recorder) -> Span<'a> {
    Span {
        name,
        start: Instant::now(),
        recorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_counts_by_kind() {
        let rec = MemoryRecorder::new();
        rec.record(Event::EpochStarted { epoch: 0, lr: 0.1 });
        rec.record(Event::EpochStarted { epoch: 1, lr: 0.1 });
        rec.record(Event::GradClipped {
            epoch: 0,
            norm: 9.0,
            max_norm: 5.0,
        });
        assert_eq!(rec.len(), 3);
        assert_eq!(
            rec.event_counts(),
            vec![
                ("epoch_started".to_string(), 2),
                ("grad_clipped".to_string(), 1)
            ]
        );
        let clipped = rec.filtered(|e| matches!(e, Event::GradClipped { .. }));
        assert_eq!(clipped.len(), 1);
    }

    #[test]
    fn span_emits_on_drop_with_positive_duration() {
        let rec = MemoryRecorder::new();
        {
            let guard = span("epoch", &rec);
            assert!(guard.elapsed_ms() >= 0.0);
        }
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::SpanClosed { name, wall_ms } => {
                assert_eq!(name, "epoch");
                assert!(*wall_ms >= 0.0);
            }
            other => panic!("expected SpanClosed, got {other:?}"),
        }
    }

    #[test]
    fn null_recorder_reports_nothing() {
        let rec = NullRecorder;
        rec.record(Event::EpochStarted { epoch: 0, lr: 0.1 });
        assert!(rec.event_counts().is_empty());
        rec.flush();
    }
}
