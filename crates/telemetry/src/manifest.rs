//! Run manifests: the terminal summary record of a training run.

use crate::json::Json;

/// One factorized layer's final rank in the manifest's R̂ listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankEntry {
    /// Layer name.
    pub layer: String,
    /// Chosen factorization rank.
    pub rank: usize,
    /// Full rank the layer had before factorization.
    pub full_rank: usize,
}

/// Terminal summary of a run, emitted as the last telemetry event.
///
/// Captures everything needed to identify and reproduce the run — the
/// configuration hash, seed, and toolchain provenance — alongside the
/// discovered Cuttlefish configuration S = (Ê, K̂, R̂) and event counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// JSONL schema version; bump when field semantics change.
    pub schema_version: u32,
    /// FNV-1a hash of the trainer config + switch policy debug encodings.
    pub config_hash: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Switch-policy name (`"cuttlefish"`, `"full_rank"`, `"manual"`, …).
    pub policy: String,
    /// Discovered (or configured) switch epoch Ê, if a switch happened.
    pub e_hat: Option<usize>,
    /// Number of leading full-rank layers K̂, if a switch happened.
    pub k_hat: Option<usize>,
    /// Final per-layer ranks R̂ for factorized layers.
    pub ranks: Vec<RankEntry>,
    /// Parameter count of the full-rank model.
    pub params_full: usize,
    /// Parameter count at the end of the run.
    pub params_final: usize,
    /// `git describe --always --dirty` output, or `None` outside a
    /// checkout.
    pub git_describe: Option<String>,
    /// Number of events recorded per kind, including this manifest.
    pub event_counts: Vec<(String, u64)>,
    /// Simulated wall-clock hours from the device clock model.
    pub sim_hours: f64,
}

/// Current manifest schema version.
pub const SCHEMA_VERSION: u32 = 1;

impl RunManifest {
    /// Encodes the manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("config_hash", Json::Str(self.config_hash.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("policy", Json::Str(self.policy.clone())),
            (
                "e_hat",
                match self.e_hat {
                    Some(e) => Json::Num(e as f64),
                    None => Json::Null,
                },
            ),
            (
                "k_hat",
                match self.k_hat {
                    Some(k) => Json::Num(k as f64),
                    None => Json::Null,
                },
            ),
            (
                "ranks",
                Json::Arr(
                    self.ranks
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("layer", Json::Str(r.layer.clone())),
                                ("rank", Json::Num(r.rank as f64)),
                                ("full_rank", Json::Num(r.full_rank as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("params_full", Json::Num(self.params_full as f64)),
            ("params_final", Json::Num(self.params_final as f64)),
            (
                "git_describe",
                match &self.git_describe {
                    Some(g) => Json::Str(g.clone()),
                    None => Json::Null,
                },
            ),
            (
                "event_counts",
                Json::Obj(
                    self.event_counts
                        .iter()
                        .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
            ("sim_hours", Json::num(self.sim_hours)),
        ])
    }

    /// Decodes a manifest from a JSON object.
    pub fn from_json(v: &Json) -> Option<RunManifest> {
        Some(RunManifest {
            schema_version: v.get("schema_version")?.as_u64()? as u32,
            config_hash: v.get("config_hash")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_u64()?,
            policy: v.get("policy")?.as_str()?.to_string(),
            e_hat: {
                let e = v.get("e_hat")?;
                if e.is_null() {
                    None
                } else {
                    Some(e.as_usize()?)
                }
            },
            k_hat: {
                let k = v.get("k_hat")?;
                if k.is_null() {
                    None
                } else {
                    Some(k.as_usize()?)
                }
            },
            ranks: v
                .get("ranks")?
                .as_arr()?
                .iter()
                .map(|r| {
                    Some(RankEntry {
                        layer: r.get("layer")?.as_str()?.to_string(),
                        rank: r.get("rank")?.as_usize()?,
                        full_rank: r.get("full_rank")?.as_usize()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            params_full: v.get("params_full")?.as_usize()?,
            params_final: v.get("params_final")?.as_usize()?,
            git_describe: {
                let g = v.get("git_describe")?;
                if g.is_null() {
                    None
                } else {
                    Some(g.as_str()?.to_string())
                }
            },
            event_counts: match v.get("event_counts")? {
                Json::Obj(pairs) => pairs
                    .iter()
                    .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
                    .collect::<Option<Vec<_>>>()?,
                _ => return None,
            },
            sim_hours: v.get("sim_hours")?.as_f64()?,
        })
    }
}

/// Hashes an arbitrary string with 64-bit FNV-1a, formatted as fixed-width
/// hex. Used to fingerprint run configurations: callers hash the `Debug`
/// encoding of their config structs, which is stable for a given build and
/// cheap to compare across runs.
pub fn fnv1a_hash(text: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

/// Returns `git describe --always --dirty` for the current working
/// directory, memoized for the process lifetime. `None` when git is
/// unavailable or the cwd is not a repository.
pub fn git_describe() -> Option<String> {
    use std::sync::OnceLock;
    static DESCRIBE: OnceLock<Option<String>> = OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            let out = std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()?;
            if !out.status.success() {
                return None;
            }
            let text = String::from_utf8(out.stdout).ok()?;
            let text = text.trim();
            if text.is_empty() {
                None
            } else {
                Some(text.to_string())
            }
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_distinguishes() {
        // Reference vector for 64-bit FNV-1a of the empty string.
        assert_eq!(fnv1a_hash(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hash("abc"), fnv1a_hash("abc"));
        assert_ne!(fnv1a_hash("abc"), fnv1a_hash("abd"));
        assert_eq!(fnv1a_hash("x").len(), 16);
    }

    #[test]
    fn manifest_round_trips() {
        let m = RunManifest {
            schema_version: SCHEMA_VERSION,
            config_hash: fnv1a_hash("cfg"),
            seed: 7,
            policy: "cuttlefish".to_string(),
            e_hat: Some(3),
            k_hat: Some(2),
            ranks: vec![RankEntry {
                layer: "stack2.conv1".to_string(),
                rank: 16,
                full_rank: 64,
            }],
            params_full: 1_000_000,
            params_final: 400_000,
            git_describe: Some("abc1234-dirty".to_string()),
            event_counts: vec![("epoch_completed".to_string(), 10)],
            sim_hours: 1.25,
        };
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_with_empty_optionals_round_trips() {
        let m = RunManifest {
            schema_version: SCHEMA_VERSION,
            config_hash: fnv1a_hash("other"),
            seed: 0,
            policy: "full_rank".to_string(),
            e_hat: None,
            k_hat: None,
            ranks: vec![],
            params_full: 10,
            params_final: 10,
            git_describe: None,
            event_counts: vec![],
            sim_hours: 0.0,
        };
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
