//! # cuttlefish-telemetry
//!
//! Structured observability for the Cuttlefish training stack: typed
//! events, pluggable recorder sinks, span timing, kernel-counter
//! snapshots, and terminal run manifests.
//!
//! The crate is **dependency-free by design**. It sits below every other
//! crate in the workspace (the dependency arrow points core → telemetry,
//! never back), so it must not constrain what depends on it; events
//! serialize through a small hand-rolled JSON layer ([`json`]) instead of
//! serde, keeping the JSONL schema explicit and stable.
//!
//! ## Model
//!
//! - [`Event`] — one typed record per lifecycle moment of Cuttlefish
//!   Algorithms 1–2: epochs, stable-rank samples, tracker verdicts, the
//!   roofline profile, the full→factorized switch, gradient clipping,
//!   kernel-counter deltas, spans, and the terminal [`RunManifest`].
//! - [`Recorder`] — a sink taking `&self`; thread one through the stack
//!   as `&dyn Recorder`. Ships with [`NullRecorder`] (discard; the
//!   default), [`MemoryRecorder`] (tests, in-process consumers), and
//!   [`JsonlRecorder`] (append-only JSON Lines file).
//! - [`span`] — a drop guard that emits [`Event::SpanClosed`] with
//!   monotonic wall time.
//! - [`RunReport`] — parses a JSONL stream back into events and renders
//!   the human-readable report behind the `telemetry_summary` binary.
//! - [`metrics`] — the *live* measurement plane: a lock-free
//!   [`MetricsRegistry`] of sharded counters, gauges, and log-linear
//!   histograms with constant memory and mergeable snapshots, for
//!   percentiles while the system is running (the event log answers
//!   questions after the fact; the registry answers them now).
//! - [`trace`] — [`TraceId`] minting and canonical stage names; serve
//!   and dist propagate ids through queues and worker threads and emit
//!   [`Event::TraceSpan`] per stage (behind their `obs` features).
//! - [`export`] — [`SnapshotExporter`] and helpers turning registry
//!   snapshots into JSONL events and Prometheus text exposition.
//!
//! ## Overhead
//!
//! Recording costs one virtual call per event against [`NullRecorder`].
//! Registry metrics are lock-free on the hot path: a counter bump is one
//! relaxed atomic add on a padded shard, a histogram record a handful of
//! relaxed RMWs (`obs_bench` in `cuttlefish-bench` reports nanoseconds
//! per record). The hot-loop kernel counters live in `cuttlefish-tensor`
//! behind its `telemetry` feature and compile to nothing when it is off;
//! this crate only defines the [`KernelCounters`] snapshot type they
//! report into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use event::{Event, KernelCounters, LayerVerdict, RankDecisionEvent};
pub use export::{prometheus_text, SnapshotExporter};
pub use json::Json;
pub use manifest::{fnv1a_hash, git_describe, RankEntry, RunManifest, SCHEMA_VERSION};
pub use metrics::{
    labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use recorder::{span, JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, Span};
pub use report::RunReport;
pub use trace::TraceId;

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every `Event` variant, exercising optional fields
    /// in both the `Some`/`None` states and a non-finite ε.
    fn all_variants() -> Vec<Event> {
        vec![
            Event::EpochStarted { epoch: 0, lr: 0.1 },
            Event::EpochCompleted {
                epoch: 0,
                loss: 2.31,
                metric: Some(0.12),
                lr: 0.1,
                wall_ms: 41.5,
            },
            Event::EpochCompleted {
                epoch: 1,
                loss: 1.9,
                metric: None,
                lr: 0.05,
                wall_ms: 39.0,
            },
            Event::StableRankSampled {
                epoch: 1,
                layer: "stack2.conv1".to_string(),
                rho: 6.4,
                scaled_rho: 3.2,
            },
            Event::TrackerVerdict {
                epoch: 2,
                epsilon: f32::INFINITY,
                converged: false,
                layers: vec![
                    LayerVerdict {
                        layer: "stack2.conv1".to_string(),
                        derivative: Some(0.03),
                        stabilized: true,
                    },
                    LayerVerdict {
                        layer: "stack3.conv1".to_string(),
                        derivative: None,
                        stabilized: false,
                    },
                ],
            },
            Event::ProfileMeasured {
                stack: 2,
                full_time_s: 0.8,
                factored_time_s: 0.3,
                speedup: 8.0 / 3.0,
                threshold: 1.5,
            },
            Event::SwitchTriggered {
                e_hat: 3,
                k_hat: 1,
                decisions: vec![
                    RankDecisionEvent {
                        layer: "stack1.conv1".to_string(),
                        index: 1,
                        stack: 1,
                        full_rank: 64,
                        estimate: 4.0,
                        chosen: None,
                        skip: Some("within_k".to_string()),
                    },
                    RankDecisionEvent {
                        layer: "stack2.conv1".to_string(),
                        index: 2,
                        stack: 2,
                        full_rank: 128,
                        estimate: 3.2,
                        chosen: Some(24),
                        skip: None,
                    },
                ],
            },
            Event::GradClipped {
                epoch: 0,
                norm: 11.7,
                max_norm: 5.0,
            },
            Event::KernelCounterSample {
                scope: "epoch".to_string(),
                epoch: Some(2),
                counters: KernelCounters {
                    matmul_calls: 128,
                    matmul_flops: 2_000_000,
                    im2col_calls: 64,
                    im2col_elems: 500_000,
                    svd_sweeps: 12,
                    power_iters: 40,
                },
            },
            Event::KernelCounterSample {
                scope: "switch".to_string(),
                epoch: None,
                counters: KernelCounters::default(),
            },
            Event::TraceSpan {
                trace: 0xfeed_face_cafe_f00d,
                stage: trace::stage::QUEUE.to_string(),
                worker: Some(2),
                wall_ms: 0.4,
            },
            Event::TraceSpan {
                trace: 1,
                stage: trace::stage::EXCHANGE.to_string(),
                worker: None,
                wall_ms: 3.5,
            },
            Event::MetricsSnapshot {
                scope: "final".to_string(),
                snapshot: {
                    let reg = MetricsRegistry::new();
                    reg.counter(&labeled("serve_requests_total", &[("outcome", "ok")]))
                        .add(9);
                    reg.gauge("serve_queue_depth").set(4);
                    let h = reg.histogram("serve_stage_infer_us");
                    h.record(250);
                    h.record(90_000);
                    reg.snapshot()
                },
            },
            Event::SpanClosed {
                name: "profiling".to_string(),
                wall_ms: 7.25,
            },
            Event::Manifest(RunManifest {
                schema_version: SCHEMA_VERSION,
                config_hash: fnv1a_hash("trainer+policy"),
                seed: 42,
                policy: "cuttlefish".to_string(),
                e_hat: Some(3),
                k_hat: Some(1),
                ranks: vec![RankEntry {
                    layer: "stack2.conv1".to_string(),
                    rank: 24,
                    full_rank: 128,
                }],
                params_full: 11_173_962,
                params_final: 3_280_326,
                git_describe: Some("v0-12-gabc1234".to_string()),
                event_counts: vec![
                    ("epoch_completed".to_string(), 4),
                    ("switch_triggered".to_string(), 1),
                ],
                sim_hours: 2.75,
            }),
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in all_variants() {
            let line = event.to_jsonl();
            let back = Event::parse_jsonl_line(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            // TrackerVerdict carries a NaN-capable ε; compare through a
            // re-encode so `NaN != NaN` cannot produce a false failure.
            assert_eq!(back.to_jsonl(), line, "unstable encoding for {line}");
            if !line.contains("\"NaN\"") {
                assert_eq!(back, event, "lossy round trip for {line}");
            }
        }
    }

    #[test]
    fn every_variant_round_trips_through_jsonl_recorder() {
        let path = std::env::temp_dir().join(format!(
            "cuttlefish-telemetry-roundtrip-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let events = all_variants();
        {
            let rec = JsonlRecorder::create(&path).expect("open jsonl");
            for event in &events {
                rec.record(event.clone());
            }
            // Counts cover every kind exactly once per record call.
            let total: u64 = rec.event_counts().iter().map(|(_, n)| n).sum();
            assert_eq!(total as usize, events.len());
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back jsonl");
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_jsonl_line(l).expect("parse recorded line"))
            .collect();
        assert_eq!(parsed, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_recorder_appends_across_reopens() {
        let path = std::env::temp_dir().join(format!(
            "cuttlefish-telemetry-append-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        for epoch in 0..2 {
            let rec = JsonlRecorder::create(&path).expect("open jsonl");
            rec.record(Event::EpochStarted { epoch, lr: 0.1 });
        }
        let text = std::fs::read_to_string(&path).expect("read back jsonl");
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_names_are_stable() {
        // The JSONL schema is an interface; catch accidental renames.
        let kinds: Vec<&str> = all_variants().iter().map(|e| e.kind()).collect();
        for expected in [
            "epoch_started",
            "epoch_completed",
            "stable_rank_sampled",
            "tracker_verdict",
            "profile_measured",
            "switch_triggered",
            "grad_clipped",
            "kernel_counters",
            "trace_span",
            "metrics_snapshot",
            "span",
            "manifest",
        ] {
            assert!(kinds.contains(&expected), "missing kind '{expected}'");
        }
    }
}
