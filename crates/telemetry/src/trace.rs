//! Trace identifiers and stage names for request-level tracing.
//!
//! A [`TraceId`] is minted once at admission (serve) or per round (dist)
//! and rides along with the work as it crosses queues, batches, and
//! worker threads. Every timed stage emits an [`crate::Event::TraceSpan`]
//! carrying the id, so a report can reassemble a single request's
//! queue→batch→infer→respond timeline — or aggregate spans per stage to
//! answer "where did the p99 go".
//!
//! Minting is lock-free: a process-wide atomic sequence number mixed
//! through a SplitMix64 finalizer with a per-process seed, so ids are
//! unique within a process, well-distributed, and extremely unlikely to
//! collide across processes in one run's logs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Canonical stage names used in `TraceSpan` events, so reports and
/// metrics agree on spelling.
pub mod stage {
    /// Serve: admission → dequeue (time spent waiting in the queue).
    pub const QUEUE: &str = "queue";
    /// Serve: dequeue → batch assembled (deadline checks, row copies).
    pub const BATCH: &str = "batch";
    /// Serve: forward pass over the assembled batch.
    pub const INFER: &str = "infer";
    /// Serve: inference done → response handed to the caller.
    pub const RESPOND: &str = "respond";
    /// Dist: one worker's local forward/backward for a round.
    pub const COMPUTE: &str = "compute";
    /// Dist: gradient gather + reduce + broadcast for a round.
    pub const EXCHANGE: &str = "exchange";
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        nanos ^ (std::process::id() as u64).rotate_left(32)
    })
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An opaque identifier tying together the spans of one request (serve)
/// or one round (dist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Mints a fresh, process-unique id. Lock-free.
    pub fn mint() -> TraceId {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        // RELAXED: uniqueness needs only the RMW's atomicity — every caller
        // gets a distinct sequence number; no other memory is published.
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        TraceId(splitmix64(
            process_seed() ^ seq.wrapping_mul(0x2545_f491_4f6c_dd1d),
        ))
    }

    /// Wraps a raw id (e.g. decoded from a log).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Lowercase 16-digit hex form — the JSON wire format, since a JSON
    /// number (f64) cannot hold all 64 bits losslessly.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`TraceId::to_hex`] form.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn minted_ids_are_unique() {
        let ids: HashSet<u64> = (0..10_000).map(|_| TraceId::mint().as_u64()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn hex_round_trips() {
        for raw in [0u64, 1, 0xdead_beef, u64::MAX] {
            let id = TraceId::from_u64(raw);
            assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        }
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("0"), None); // wrong length
        assert_eq!(TraceId::from_hex("00000000000000000"), None); // 17 chars
    }

    #[test]
    fn mint_is_thread_safe() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..1000)
                        .map(|_| TraceId::mint().as_u64())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate trace id {id:#x}");
            }
        }
    }
}
