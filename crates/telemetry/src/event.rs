//! Typed telemetry events covering the Cuttlefish training lifecycle.
//!
//! Every event encodes to one JSON object with a `"kind"` discriminant and
//! decodes back losslessly (`Event::to_json` / `Event::from_json`). The
//! JSONL schema is documented in `crates/telemetry/README.md`; treat field
//! names as a stable interface — downstream tooling parses them.

use crate::json::Json;
use crate::manifest::RunManifest;
use crate::metrics::RegistrySnapshot;
use crate::trace::TraceId;

/// Per-layer stabilization verdict inside a [`Event::TrackerVerdict`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerVerdict {
    /// Layer name, as reported by the network adapter.
    pub layer: String,
    /// Mean absolute derivative |dρ/dt| over the trailing window, or `None`
    /// while the tracker has fewer than `window + 1` samples.
    pub derivative: Option<f32>,
    /// Whether this layer's stable rank has stabilized (derivative ≤ ε).
    pub stabilized: bool,
}

/// One factorization target's rank decision inside a
/// [`Event::SwitchTriggered`].
///
/// This mirrors `cuttlefish::factorize::RankDecision` but is owned by the
/// telemetry crate so the dependency arrow keeps pointing downward (core
/// depends on telemetry, never the reverse).
#[derive(Debug, Clone, PartialEq)]
pub struct RankDecisionEvent {
    /// Layer name.
    pub layer: String,
    /// 1-based layer index within the network.
    pub index: usize,
    /// Stack (resolution group) the layer belongs to.
    pub stack: usize,
    /// Full rank of the layer's unrolled weight matrix.
    pub full_rank: usize,
    /// Stable-rank estimate the decision was derived from.
    pub estimate: f32,
    /// Chosen factorization rank, or `None` if the layer was skipped.
    pub chosen: Option<usize>,
    /// Reason the layer was skipped (`"within_k"`, `"last_layer"`,
    /// `"no_reduction"`), or `None` if it was factorized.
    pub skip: Option<String>,
}

/// Snapshot of the process-global kernel counters maintained by
/// `cuttlefish-tensor` (all zeros unless its `telemetry` feature is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Dense GEMM calls (`matmul` + transposed variants).
    pub matmul_calls: u64,
    /// Estimated floating-point operations across those GEMMs (2·m·n·k).
    pub matmul_flops: u64,
    /// `im2col` unroll calls.
    pub im2col_calls: u64,
    /// Elements written by `im2col` unrolls.
    pub im2col_elems: u64,
    /// Jacobi SVD sweeps (one-sided + eigenvalue variants).
    pub svd_sweeps: u64,
    /// Power-iteration steps for leading singular values.
    pub power_iters: u64,
}

impl KernelCounters {
    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == KernelCounters::default()
    }

    /// Counters accumulated since `earlier` (saturating per field).
    pub fn delta_since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            matmul_calls: self.matmul_calls.saturating_sub(earlier.matmul_calls),
            matmul_flops: self.matmul_flops.saturating_sub(earlier.matmul_flops),
            im2col_calls: self.im2col_calls.saturating_sub(earlier.im2col_calls),
            im2col_elems: self.im2col_elems.saturating_sub(earlier.im2col_elems),
            svd_sweeps: self.svd_sweeps.saturating_sub(earlier.svd_sweeps),
            power_iters: self.power_iters.saturating_sub(earlier.power_iters),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("matmul_calls", Json::Num(self.matmul_calls as f64)),
            ("matmul_flops", Json::Num(self.matmul_flops as f64)),
            ("im2col_calls", Json::Num(self.im2col_calls as f64)),
            ("im2col_elems", Json::Num(self.im2col_elems as f64)),
            ("svd_sweeps", Json::Num(self.svd_sweeps as f64)),
            ("power_iters", Json::Num(self.power_iters as f64)),
        ])
    }

    fn from_json(v: &Json) -> Option<KernelCounters> {
        Some(KernelCounters {
            matmul_calls: v.get("matmul_calls")?.as_u64()?,
            matmul_flops: v.get("matmul_flops")?.as_u64()?,
            im2col_calls: v.get("im2col_calls")?.as_u64()?,
            im2col_elems: v.get("im2col_elems")?.as_u64()?,
            svd_sweeps: v.get("svd_sweeps")?.as_u64()?,
            power_iters: v.get("power_iters")?.as_u64()?,
        })
    }
}

/// A structured telemetry event.
///
/// Variants map one-to-one onto the phases of Cuttlefish Algorithms 1–2:
/// epoch progress, stable-rank sampling, tracker convergence checks, the
/// roofline profile, the full→factorized switch, plus cross-cutting signals
/// (gradient clipping, kernel counters, spans) and the terminal manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An epoch is starting.
    EpochStarted {
        /// 0-based epoch number.
        epoch: usize,
        /// Learning rate in effect for this epoch.
        lr: f32,
    },
    /// An epoch finished.
    EpochCompleted {
        /// 0-based epoch number.
        epoch: usize,
        /// Mean training loss over the epoch.
        loss: f32,
        /// Eval metric (accuracy or perplexity proxy) if evaluation ran
        /// this epoch; `None` on non-eval epochs.
        metric: Option<f32>,
        /// Learning rate that was in effect.
        lr: f32,
        /// Wall-clock duration of the epoch in milliseconds.
        wall_ms: f64,
    },
    /// A stable-rank sample for one tracked layer (Algorithm 1, line 4).
    StableRankSampled {
        /// 0-based epoch the sample was taken at.
        epoch: usize,
        /// Layer name.
        layer: String,
        /// Raw stable rank ‖W‖²_F / σ²_max.
        rho: f32,
        /// Stable rank after ξ calibration (scaled rank rule).
        scaled_rho: f32,
    },
    /// The rank tracker's per-layer convergence verdict for an epoch.
    TrackerVerdict {
        /// 0-based epoch of the verdict.
        epoch: usize,
        /// Stabilization threshold ε the derivatives are compared against.
        epsilon: f32,
        /// Whether every tracked layer has stabilized (switch condition).
        converged: bool,
        /// Per-layer derivatives and verdicts.
        layers: Vec<LayerVerdict>,
    },
    /// One stack's roofline measurement from Algorithm 2 profiling.
    ProfileMeasured {
        /// Stack (resolution group) index.
        stack: usize,
        /// Simulated full-rank step time in seconds.
        full_time_s: f64,
        /// Simulated factorized step time in seconds.
        factored_time_s: f64,
        /// `full_time_s / factored_time_s`.
        speedup: f64,
        /// Required speedup threshold v for the stack to be factorized.
        threshold: f64,
    },
    /// The full→factorized switch fired with discovered S = (Ê, K̂, R̂).
    SwitchTriggered {
        /// Discovered switch epoch Ê (0-based; the number of full-rank
        /// epochs that were run).
        e_hat: usize,
        /// Number of leading layers K̂ kept full-rank.
        k_hat: usize,
        /// Per-target rank decisions R̂.
        decisions: Vec<RankDecisionEvent>,
    },
    /// Gradient clipping fired (satellite: only emitted when the global
    /// norm actually exceeded the limit).
    GradClipped {
        /// 0-based epoch.
        epoch: usize,
        /// Pre-clip global gradient norm.
        norm: f32,
        /// Configured max norm.
        max_norm: f32,
    },
    /// A kernel-counter delta attributed to a scope (an epoch, the switch,
    /// profiling, …).
    KernelCounterSample {
        /// What the delta covers, e.g. `"epoch"`, `"switch"`.
        scope: String,
        /// Epoch the sample belongs to, when scoped to one.
        epoch: Option<usize>,
        /// Counter deltas accumulated inside the scope.
        counters: KernelCounters,
    },
    /// The numeric sanitizer (the `checked` feature of
    /// `cuttlefish-tensor`) found a non-finite value in a kernel output.
    NumericPoison {
        /// Kernel that produced the value (`"matmul"`, `"im2col"`, …).
        op: String,
        /// Layer label active when the kernel ran (empty outside a
        /// labelled scope).
        label: String,
        /// Flat index of the first non-finite element.
        index: usize,
        /// The offending value rendered as a string (`"NaN"`, `"inf"`,
        /// `"-inf"` — JSON has no encoding for non-finite numbers).
        value: String,
    },
    /// One serving request reached a terminal state on a worker: answered,
    /// or rejected by a deadline check at dequeue or completion. Requests
    /// refused at admission (queue full, shutdown) never reach a worker
    /// and are not recorded — backpressure is the caller's signal there.
    ServeRequest {
        /// Worker thread index that handled the request.
        worker: usize,
        /// Size of the coalesced batch the request ran in.
        batch_size: usize,
        /// Time spent queued before dequeue, in milliseconds.
        queue_ms: f64,
        /// Forward-pass time attributed to the request's batch, in
        /// milliseconds (0 for requests expired at dequeue).
        infer_ms: f64,
        /// `"ok"`, `"deadline_dequeue"`, `"deadline_completion"`, or
        /// `"failed"`.
        outcome: String,
    },
    /// One coalesced serving batch executed on a worker.
    ServeBatch {
        /// Worker thread index.
        worker: usize,
        /// Number of requests coalesced into the batch.
        batch_size: usize,
        /// Queue depth left behind after the batch was drained.
        queue_depth: usize,
        /// Forward-pass wall time in milliseconds.
        wall_ms: f64,
    },
    /// One worker finished the compute half of a lockstep round in a
    /// `cuttlefish-dist` data-parallel run.
    DistWorkerStep {
        /// Global lockstep round index.
        step: usize,
        /// Worker id.
        worker: usize,
        /// Batch loss the worker observed this round.
        loss: f32,
        /// Wall-clock forward+backward time in milliseconds (including any
        /// injected straggler delay).
        compute_ms: f64,
        /// How many rounds behind the contributed gradient is (0 for an
        /// on-time contribution, `d` for a straggler included under the
        /// bounded-staleness rule).
        staleness: usize,
    },
    /// One lockstep gradient exchange (reduce + broadcast) completed.
    DistExchange {
        /// Global lockstep round index.
        step: usize,
        /// Exchange implementation name (`"dense_allreduce"`,
        /// `"factor_allreduce"`).
        exchange: String,
        /// Gradient contributions reduced this round.
        participants: usize,
        /// Contributions that were stale but within the staleness bound.
        stale: usize,
        /// Stale contributions dropped for exceeding the bound.
        dropped: usize,
        /// Total uplink bytes (worker → coordinator gradient frames).
        bytes_up: u64,
        /// Total downlink bytes (coordinator → workers update frames).
        bytes_down: u64,
        /// Whether the model was factorized during this round (post-switch
        /// rounds ship `(U, Vᵀ)` factor gradients only).
        factored: bool,
    },
    /// A worker lifecycle transition driven by the deterministic fault
    /// plan of a `cuttlefish-dist` run.
    DistWorkerEvent {
        /// Global lockstep round index the transition happened at.
        step: usize,
        /// Worker id.
        worker: usize,
        /// Transition: `"spawned"`, `"straggling"`, `"stale_applied"`,
        /// `"stale_dropped"`, `"crashed"`, `"joined"`, or `"synced"`.
        event: String,
    },
    /// One request routed through the fleet front door: admission, tenant
    /// attribution, and terminal outcome. Emitted by the fleet registry's
    /// ticket wrapper at the same point the live [`crate::MetricsRegistry`]
    /// counters are bumped, so the event log and the metrics plane
    /// reconcile exactly.
    FleetRequest {
        /// Model id the request was routed to.
        model: String,
        /// Tenant the request was attributed (and quota-charged) to.
        tenant: String,
        /// Terminal outcome: `"ok"`, `"deadline"`, `"overloaded"`,
        /// `"throttled"`, `"draining"`, `"unknown_model"`, or `"error"`.
        outcome: String,
        /// End-to-end latency (admission to terminal outcome) in
        /// milliseconds; 0 for requests rejected at the door.
        latency_ms: f64,
    },
    /// A fleet rollout phase transition: one hot-swap (or rollback) of a
    /// model to a new checkpoint version emits one event per phase, so the
    /// report can reconstruct the full state machine path and its timing.
    FleetRollout {
        /// Model id being rolled out.
        model: String,
        /// Target checkpoint version of the rollout.
        version: u32,
        /// Version serving before the rollout began (`None` for the
        /// initial deployment of a model).
        from: Option<u32>,
        /// Phase entered: `"loading"`, `"verifying"`, `"warming"`,
        /// `"shifting"`, `"draining_old"`, `"committed"`, or
        /// `"rolled_back"`.
        phase: String,
        /// Wall-clock milliseconds since the rollout began.
        wall_ms: f64,
    },
    /// One timed stage of a traced request (serve) or round (dist). The
    /// trace id ties the spans of a single unit of work together across
    /// queues and worker threads; aggregate per-stage to decompose tail
    /// latency. Emission is gated behind the `obs` feature of the
    /// emitting crates — per-event cost is paid only when asked for.
    TraceSpan {
        /// Trace id minted at admission (serialized as 16-digit hex — a
        /// JSON number cannot hold 64 bits losslessly).
        trace: u64,
        /// Stage name; canonical values live in [`crate::trace::stage`].
        stage: String,
        /// Worker that executed the stage, when one is attributable.
        worker: Option<usize>,
        /// Wall-clock duration of the stage in milliseconds.
        wall_ms: f64,
    },
    /// A point-in-time dump of a live metrics registry, embedding the
    /// measurement plane into the event log so reports can reconcile
    /// both views of the same run.
    MetricsSnapshot {
        /// What triggered the dump, e.g. `"periodic"`, `"final"`.
        scope: String,
        /// The registry state.
        snapshot: RegistrySnapshot,
    },
    /// A named span closed (emitted by the [`crate::Span`] guard on drop).
    SpanClosed {
        /// Span name, e.g. `"epoch"`, `"profiling"`, `"switch"`.
        name: String,
        /// Wall-clock duration in milliseconds.
        wall_ms: f64,
    },
    /// Terminal run manifest; always the last event of a run.
    Manifest(RunManifest),
}

impl Event {
    /// The `"kind"` discriminant this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpochStarted { .. } => "epoch_started",
            Event::EpochCompleted { .. } => "epoch_completed",
            Event::StableRankSampled { .. } => "stable_rank_sampled",
            Event::TrackerVerdict { .. } => "tracker_verdict",
            Event::ProfileMeasured { .. } => "profile_measured",
            Event::SwitchTriggered { .. } => "switch_triggered",
            Event::GradClipped { .. } => "grad_clipped",
            Event::KernelCounterSample { .. } => "kernel_counters",
            Event::NumericPoison { .. } => "numeric_poison",
            Event::ServeRequest { .. } => "serve_request",
            Event::ServeBatch { .. } => "serve_batch",
            Event::DistWorkerStep { .. } => "dist_worker_step",
            Event::DistExchange { .. } => "dist_exchange",
            Event::DistWorkerEvent { .. } => "dist_worker_event",
            Event::FleetRequest { .. } => "fleet_request",
            Event::FleetRollout { .. } => "fleet_rollout",
            Event::TraceSpan { .. } => "trace_span",
            Event::MetricsSnapshot { .. } => "metrics_snapshot",
            Event::SpanClosed { .. } => "span",
            Event::Manifest(_) => "manifest",
        }
    }

    /// Encodes the event as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("kind", Json::Str(self.kind().to_string()))];
        match self {
            Event::EpochStarted { epoch, lr } => {
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("lr", Json::num(*lr as f64)));
            }
            Event::EpochCompleted {
                epoch,
                loss,
                metric,
                lr,
                wall_ms,
            } => {
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("loss", Json::num(*loss as f64)));
                pairs.push(("metric", Json::opt_num(metric.map(|m| m as f64))));
                pairs.push(("lr", Json::num(*lr as f64)));
                pairs.push(("wall_ms", Json::num(*wall_ms)));
            }
            Event::StableRankSampled {
                epoch,
                layer,
                rho,
                scaled_rho,
            } => {
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("layer", Json::Str(layer.clone())));
                pairs.push(("rho", Json::num(*rho as f64)));
                pairs.push(("scaled_rho", Json::num(*scaled_rho as f64)));
            }
            Event::TrackerVerdict {
                epoch,
                epsilon,
                converged,
                layers,
            } => {
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("epsilon", Json::num(*epsilon as f64)));
                pairs.push(("converged", Json::Bool(*converged)));
                pairs.push((
                    "layers",
                    Json::Arr(
                        layers
                            .iter()
                            .map(|l| {
                                Json::obj(vec![
                                    ("layer", Json::Str(l.layer.clone())),
                                    ("derivative", Json::opt_num(l.derivative.map(|d| d as f64))),
                                    ("stabilized", Json::Bool(l.stabilized)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Event::ProfileMeasured {
                stack,
                full_time_s,
                factored_time_s,
                speedup,
                threshold,
            } => {
                pairs.push(("stack", Json::Num(*stack as f64)));
                pairs.push(("full_time_s", Json::num(*full_time_s)));
                pairs.push(("factored_time_s", Json::num(*factored_time_s)));
                pairs.push(("speedup", Json::num(*speedup)));
                pairs.push(("threshold", Json::num(*threshold)));
            }
            Event::SwitchTriggered {
                e_hat,
                k_hat,
                decisions,
            } => {
                pairs.push(("e_hat", Json::Num(*e_hat as f64)));
                pairs.push(("k_hat", Json::Num(*k_hat as f64)));
                pairs.push((
                    "decisions",
                    Json::Arr(
                        decisions
                            .iter()
                            .map(|d| {
                                Json::obj(vec![
                                    ("layer", Json::Str(d.layer.clone())),
                                    ("index", Json::Num(d.index as f64)),
                                    ("stack", Json::Num(d.stack as f64)),
                                    ("full_rank", Json::Num(d.full_rank as f64)),
                                    ("estimate", Json::num(d.estimate as f64)),
                                    (
                                        "chosen",
                                        match d.chosen {
                                            Some(r) => Json::Num(r as f64),
                                            None => Json::Null,
                                        },
                                    ),
                                    (
                                        "skip",
                                        match &d.skip {
                                            Some(s) => Json::Str(s.clone()),
                                            None => Json::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Event::GradClipped {
                epoch,
                norm,
                max_norm,
            } => {
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("norm", Json::num(*norm as f64)));
                pairs.push(("max_norm", Json::num(*max_norm as f64)));
            }
            Event::KernelCounterSample {
                scope,
                epoch,
                counters,
            } => {
                pairs.push(("scope", Json::Str(scope.clone())));
                pairs.push((
                    "epoch",
                    match epoch {
                        Some(e) => Json::Num(*e as f64),
                        None => Json::Null,
                    },
                ));
                pairs.push(("counters", counters.to_json()));
            }
            Event::NumericPoison {
                op,
                label,
                index,
                value,
            } => {
                pairs.push(("op", Json::Str(op.clone())));
                pairs.push(("label", Json::Str(label.clone())));
                pairs.push(("index", Json::Num(*index as f64)));
                pairs.push(("value", Json::Str(value.clone())));
            }
            Event::ServeRequest {
                worker,
                batch_size,
                queue_ms,
                infer_ms,
                outcome,
            } => {
                pairs.push(("worker", Json::Num(*worker as f64)));
                pairs.push(("batch_size", Json::Num(*batch_size as f64)));
                pairs.push(("queue_ms", Json::num(*queue_ms)));
                pairs.push(("infer_ms", Json::num(*infer_ms)));
                pairs.push(("outcome", Json::Str(outcome.clone())));
            }
            Event::ServeBatch {
                worker,
                batch_size,
                queue_depth,
                wall_ms,
            } => {
                pairs.push(("worker", Json::Num(*worker as f64)));
                pairs.push(("batch_size", Json::Num(*batch_size as f64)));
                pairs.push(("queue_depth", Json::Num(*queue_depth as f64)));
                pairs.push(("wall_ms", Json::num(*wall_ms)));
            }
            Event::DistWorkerStep {
                step,
                worker,
                loss,
                compute_ms,
                staleness,
            } => {
                pairs.push(("step", Json::Num(*step as f64)));
                pairs.push(("worker", Json::Num(*worker as f64)));
                pairs.push(("loss", Json::num(*loss as f64)));
                pairs.push(("compute_ms", Json::num(*compute_ms)));
                pairs.push(("staleness", Json::Num(*staleness as f64)));
            }
            Event::DistExchange {
                step,
                exchange,
                participants,
                stale,
                dropped,
                bytes_up,
                bytes_down,
                factored,
            } => {
                pairs.push(("step", Json::Num(*step as f64)));
                pairs.push(("exchange", Json::Str(exchange.clone())));
                pairs.push(("participants", Json::Num(*participants as f64)));
                pairs.push(("stale", Json::Num(*stale as f64)));
                pairs.push(("dropped", Json::Num(*dropped as f64)));
                pairs.push(("bytes_up", Json::Num(*bytes_up as f64)));
                pairs.push(("bytes_down", Json::Num(*bytes_down as f64)));
                pairs.push(("factored", Json::Bool(*factored)));
            }
            Event::DistWorkerEvent {
                step,
                worker,
                event,
            } => {
                pairs.push(("step", Json::Num(*step as f64)));
                pairs.push(("worker", Json::Num(*worker as f64)));
                pairs.push(("event", Json::Str(event.clone())));
            }
            Event::FleetRequest {
                model,
                tenant,
                outcome,
                latency_ms,
            } => {
                pairs.push(("model", Json::Str(model.clone())));
                pairs.push(("tenant", Json::Str(tenant.clone())));
                pairs.push(("outcome", Json::Str(outcome.clone())));
                pairs.push(("latency_ms", Json::num(*latency_ms)));
            }
            Event::FleetRollout {
                model,
                version,
                from,
                phase,
                wall_ms,
            } => {
                pairs.push(("model", Json::Str(model.clone())));
                pairs.push(("version", Json::Num(*version as f64)));
                pairs.push((
                    "from",
                    match from {
                        Some(f) => Json::Num(*f as f64),
                        None => Json::Null,
                    },
                ));
                pairs.push(("phase", Json::Str(phase.clone())));
                pairs.push(("wall_ms", Json::num(*wall_ms)));
            }
            Event::TraceSpan {
                trace,
                stage,
                worker,
                wall_ms,
            } => {
                pairs.push(("trace", Json::Str(TraceId::from_u64(*trace).to_hex())));
                pairs.push(("stage", Json::Str(stage.clone())));
                pairs.push((
                    "worker",
                    match worker {
                        Some(w) => Json::Num(*w as f64),
                        None => Json::Null,
                    },
                ));
                pairs.push(("wall_ms", Json::num(*wall_ms)));
            }
            Event::MetricsSnapshot { scope, snapshot } => {
                pairs.push(("scope", Json::Str(scope.clone())));
                pairs.push(("snapshot", snapshot.to_json()));
            }
            Event::SpanClosed { name, wall_ms } => {
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("wall_ms", Json::num(*wall_ms)));
            }
            Event::Manifest(manifest) => {
                pairs.push(("manifest", manifest.to_json()));
            }
        }
        Json::obj(pairs)
    }

    /// Decodes an event from a JSON object produced by [`Event::to_json`].
    ///
    /// Returns `None` when the kind is unknown or required fields are
    /// missing or mistyped.
    pub fn from_json(v: &Json) -> Option<Event> {
        let kind = v.get("kind")?.as_str()?;
        match kind {
            "epoch_started" => Some(Event::EpochStarted {
                epoch: v.get("epoch")?.as_usize()?,
                lr: v.get("lr")?.as_f64()? as f32,
            }),
            "epoch_completed" => Some(Event::EpochCompleted {
                epoch: v.get("epoch")?.as_usize()?,
                loss: v.get("loss")?.as_f64()? as f32,
                metric: {
                    let m = v.get("metric")?;
                    if m.is_null() {
                        None
                    } else {
                        Some(m.as_f64()? as f32)
                    }
                },
                lr: v.get("lr")?.as_f64()? as f32,
                wall_ms: v.get("wall_ms")?.as_f64()?,
            }),
            "stable_rank_sampled" => Some(Event::StableRankSampled {
                epoch: v.get("epoch")?.as_usize()?,
                layer: v.get("layer")?.as_str()?.to_string(),
                rho: v.get("rho")?.as_f64()? as f32,
                scaled_rho: v.get("scaled_rho")?.as_f64()? as f32,
            }),
            "tracker_verdict" => Some(Event::TrackerVerdict {
                epoch: v.get("epoch")?.as_usize()?,
                epsilon: v.get("epsilon")?.as_f64()? as f32,
                converged: v.get("converged")?.as_bool()?,
                layers: v
                    .get("layers")?
                    .as_arr()?
                    .iter()
                    .map(|l| {
                        Some(LayerVerdict {
                            layer: l.get("layer")?.as_str()?.to_string(),
                            derivative: {
                                let d = l.get("derivative")?;
                                if d.is_null() {
                                    None
                                } else {
                                    Some(d.as_f64()? as f32)
                                }
                            },
                            stabilized: l.get("stabilized")?.as_bool()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
            }),
            "profile_measured" => Some(Event::ProfileMeasured {
                stack: v.get("stack")?.as_usize()?,
                full_time_s: v.get("full_time_s")?.as_f64()?,
                factored_time_s: v.get("factored_time_s")?.as_f64()?,
                speedup: v.get("speedup")?.as_f64()?,
                threshold: v.get("threshold")?.as_f64()?,
            }),
            "switch_triggered" => Some(Event::SwitchTriggered {
                e_hat: v.get("e_hat")?.as_usize()?,
                k_hat: v.get("k_hat")?.as_usize()?,
                decisions: v
                    .get("decisions")?
                    .as_arr()?
                    .iter()
                    .map(|d| {
                        Some(RankDecisionEvent {
                            layer: d.get("layer")?.as_str()?.to_string(),
                            index: d.get("index")?.as_usize()?,
                            stack: d.get("stack")?.as_usize()?,
                            full_rank: d.get("full_rank")?.as_usize()?,
                            estimate: d.get("estimate")?.as_f64()? as f32,
                            chosen: {
                                let c = d.get("chosen")?;
                                if c.is_null() {
                                    None
                                } else {
                                    Some(c.as_usize()?)
                                }
                            },
                            skip: {
                                let s = d.get("skip")?;
                                if s.is_null() {
                                    None
                                } else {
                                    Some(s.as_str()?.to_string())
                                }
                            },
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
            }),
            "grad_clipped" => Some(Event::GradClipped {
                epoch: v.get("epoch")?.as_usize()?,
                norm: v.get("norm")?.as_f64()? as f32,
                max_norm: v.get("max_norm")?.as_f64()? as f32,
            }),
            "kernel_counters" => Some(Event::KernelCounterSample {
                scope: v.get("scope")?.as_str()?.to_string(),
                epoch: {
                    let e = v.get("epoch")?;
                    if e.is_null() {
                        None
                    } else {
                        Some(e.as_usize()?)
                    }
                },
                counters: KernelCounters::from_json(v.get("counters")?)?,
            }),
            "numeric_poison" => Some(Event::NumericPoison {
                op: v.get("op")?.as_str()?.to_string(),
                label: v.get("label")?.as_str()?.to_string(),
                index: v.get("index")?.as_usize()?,
                value: v.get("value")?.as_str()?.to_string(),
            }),
            "serve_request" => Some(Event::ServeRequest {
                worker: v.get("worker")?.as_usize()?,
                batch_size: v.get("batch_size")?.as_usize()?,
                queue_ms: v.get("queue_ms")?.as_f64()?,
                infer_ms: v.get("infer_ms")?.as_f64()?,
                outcome: v.get("outcome")?.as_str()?.to_string(),
            }),
            "serve_batch" => Some(Event::ServeBatch {
                worker: v.get("worker")?.as_usize()?,
                batch_size: v.get("batch_size")?.as_usize()?,
                queue_depth: v.get("queue_depth")?.as_usize()?,
                wall_ms: v.get("wall_ms")?.as_f64()?,
            }),
            "dist_worker_step" => Some(Event::DistWorkerStep {
                step: v.get("step")?.as_usize()?,
                worker: v.get("worker")?.as_usize()?,
                loss: v.get("loss")?.as_f64()? as f32,
                compute_ms: v.get("compute_ms")?.as_f64()?,
                staleness: v.get("staleness")?.as_usize()?,
            }),
            "dist_exchange" => Some(Event::DistExchange {
                step: v.get("step")?.as_usize()?,
                exchange: v.get("exchange")?.as_str()?.to_string(),
                participants: v.get("participants")?.as_usize()?,
                stale: v.get("stale")?.as_usize()?,
                dropped: v.get("dropped")?.as_usize()?,
                bytes_up: v.get("bytes_up")?.as_u64()?,
                bytes_down: v.get("bytes_down")?.as_u64()?,
                factored: v.get("factored")?.as_bool()?,
            }),
            "dist_worker_event" => Some(Event::DistWorkerEvent {
                step: v.get("step")?.as_usize()?,
                worker: v.get("worker")?.as_usize()?,
                event: v.get("event")?.as_str()?.to_string(),
            }),
            "fleet_request" => Some(Event::FleetRequest {
                model: v.get("model")?.as_str()?.to_string(),
                tenant: v.get("tenant")?.as_str()?.to_string(),
                outcome: v.get("outcome")?.as_str()?.to_string(),
                latency_ms: v.get("latency_ms")?.as_f64()?,
            }),
            "fleet_rollout" => Some(Event::FleetRollout {
                model: v.get("model")?.as_str()?.to_string(),
                version: v.get("version")?.as_u64()? as u32,
                from: {
                    let f = v.get("from")?;
                    if f.is_null() {
                        None
                    } else {
                        Some(f.as_u64()? as u32)
                    }
                },
                phase: v.get("phase")?.as_str()?.to_string(),
                wall_ms: v.get("wall_ms")?.as_f64()?,
            }),
            "trace_span" => Some(Event::TraceSpan {
                trace: TraceId::from_hex(v.get("trace")?.as_str()?)?.as_u64(),
                stage: v.get("stage")?.as_str()?.to_string(),
                worker: {
                    let w = v.get("worker")?;
                    if w.is_null() {
                        None
                    } else {
                        Some(w.as_usize()?)
                    }
                },
                wall_ms: v.get("wall_ms")?.as_f64()?,
            }),
            "metrics_snapshot" => Some(Event::MetricsSnapshot {
                scope: v.get("scope")?.as_str()?.to_string(),
                snapshot: RegistrySnapshot::from_json(v.get("snapshot")?)?,
            }),
            "span" => Some(Event::SpanClosed {
                name: v.get("name")?.as_str()?.to_string(),
                wall_ms: v.get("wall_ms")?.as_f64()?,
            }),
            "manifest" => Some(Event::Manifest(RunManifest::from_json(v.get("manifest")?)?)),
            _ => None,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().encode()
    }

    /// Parses one JSONL line back into an event.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax or schema problem.
    pub fn parse_jsonl_line(line: &str) -> Result<Event, String> {
        let v = Json::parse(line.trim())?;
        Event::from_json(&v).ok_or_else(|| {
            let kind = v
                .get("kind")
                .and_then(|k| k.as_str())
                .unwrap_or("<missing kind>");
            format!("unrecognized or malformed event of kind '{kind}'")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_poison_roundtrips() {
        let e = Event::NumericPoison {
            op: "matmul".into(),
            label: "fc1".into(),
            index: 42,
            value: "NaN".into(),
        };
        let line = e.to_jsonl();
        let back = Event::parse_jsonl_line(&line).unwrap();
        assert_eq!(back, e);
        assert_eq!(e.kind(), "numeric_poison");
    }

    #[test]
    fn serve_events_roundtrip() {
        let req = Event::ServeRequest {
            worker: 1,
            batch_size: 4,
            queue_ms: 0.5,
            infer_ms: 2.25,
            outcome: "ok".into(),
        };
        let back = Event::parse_jsonl_line(&req.to_jsonl()).unwrap();
        assert_eq!(back, req);
        assert_eq!(req.kind(), "serve_request");

        let batch = Event::ServeBatch {
            worker: 0,
            batch_size: 8,
            queue_depth: 3,
            wall_ms: 4.0,
        };
        let back = Event::parse_jsonl_line(&batch.to_jsonl()).unwrap();
        assert_eq!(back, batch);
        assert_eq!(batch.kind(), "serve_batch");
    }

    #[test]
    fn dist_events_roundtrip() {
        let step = Event::DistWorkerStep {
            step: 17,
            worker: 3,
            loss: 1.25,
            compute_ms: 4.5,
            staleness: 2,
        };
        let back = Event::parse_jsonl_line(&step.to_jsonl()).unwrap();
        assert_eq!(back, step);
        assert_eq!(step.kind(), "dist_worker_step");

        let exch = Event::DistExchange {
            step: 17,
            exchange: "factor_allreduce".into(),
            participants: 4,
            stale: 1,
            dropped: 0,
            bytes_up: 123_456,
            bytes_down: 98_304,
            factored: true,
        };
        let back = Event::parse_jsonl_line(&exch.to_jsonl()).unwrap();
        assert_eq!(back, exch);
        assert_eq!(exch.kind(), "dist_exchange");

        let life = Event::DistWorkerEvent {
            step: 9,
            worker: 5,
            event: "joined".into(),
        };
        let back = Event::parse_jsonl_line(&life.to_jsonl()).unwrap();
        assert_eq!(back, life);
        assert_eq!(life.kind(), "dist_worker_event");
    }

    #[test]
    fn fleet_events_roundtrip() {
        let req = Event::FleetRequest {
            model: "resnet-a".into(),
            tenant: "tenant-07".into(),
            outcome: "ok".into(),
            latency_ms: 3.5,
        };
        let back = Event::parse_jsonl_line(&req.to_jsonl()).unwrap();
        assert_eq!(back, req);
        assert_eq!(req.kind(), "fleet_request");

        for from in [None, Some(2)] {
            let roll = Event::FleetRollout {
                model: "resnet-a".into(),
                version: 3,
                from,
                phase: "committed".into(),
                wall_ms: 120.25,
            };
            let back = Event::parse_jsonl_line(&roll.to_jsonl()).unwrap();
            assert_eq!(back, roll);
            assert_eq!(roll.kind(), "fleet_rollout");
        }
    }

    #[test]
    fn trace_span_roundtrips_full_u64_ids() {
        // Ids above 2^53 cannot survive a JSON number; the hex-string
        // encoding must carry all 64 bits.
        for (trace, worker) in [(u64::MAX, Some(3)), (0x0123_4567_89ab_cdef, None)] {
            let e = Event::TraceSpan {
                trace,
                stage: crate::trace::stage::INFER.to_string(),
                worker,
                wall_ms: 1.75,
            };
            let back = Event::parse_jsonl_line(&e.to_jsonl()).unwrap();
            assert_eq!(back, e);
            assert_eq!(e.kind(), "trace_span");
        }
    }

    #[test]
    fn metrics_snapshot_roundtrips() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("req_total").add(7);
        reg.histogram("lat_us").record(1234);
        let e = Event::MetricsSnapshot {
            scope: "final".into(),
            snapshot: reg.snapshot(),
        };
        let back = Event::parse_jsonl_line(&e.to_jsonl()).unwrap();
        assert_eq!(back, e);
        assert_eq!(e.kind(), "metrics_snapshot");
    }

    #[test]
    fn kernel_counter_delta_saturates() {
        let a = KernelCounters {
            matmul_calls: 5,
            matmul_flops: 100,
            ..Default::default()
        };
        let b = KernelCounters {
            matmul_calls: 8,
            matmul_flops: 90, // would underflow; saturates to 0
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.matmul_calls, 3);
        assert_eq!(d.matmul_flops, 0);
        assert!(!d.is_zero());
        assert!(KernelCounters::default().is_zero());
    }
}
