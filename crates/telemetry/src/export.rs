//! Snapshot export: turning live [`MetricsRegistry`] state into JSONL
//! events and Prometheus-style text exposition.
//!
//! Two paths out of the process:
//!
//! - [`record_snapshot`] folds a snapshot into the existing event-log
//!   machinery as an [`Event::MetricsSnapshot`], so a run's JSONL stream
//!   carries the measurement plane alongside the per-event log and
//!   `RunReport` can reconcile the two.
//! - [`SnapshotExporter`] is a background thread that periodically (and
//!   once more on shutdown) appends `metrics_snapshot` lines to a JSONL
//!   file and/or rewrites a Prometheus text file in place, for scraping
//!   or tailing while the run is live.
//!
//! The Prometheus rendering ([`prometheus_text`]) emits counters and
//! gauges verbatim and histograms as summaries (`quantile="0.5|0.95|0.99"`
//! plus `_sum`/`_count`/`_max`), which keeps the exposition compact —
//! the full sparse bucket list still travels in the JSONL form.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::event::Event;
use crate::metrics::{MetricsRegistry, RegistrySnapshot};
use crate::recorder::Recorder;

/// Records the registry's current state into `recorder` as an
/// [`Event::MetricsSnapshot`] with the given scope (e.g. `"final"`).
pub fn record_snapshot(registry: &MetricsRegistry, recorder: &dyn Recorder, scope: &str) {
    recorder.record(Event::MetricsSnapshot {
        scope: scope.to_string(),
        snapshot: registry.snapshot(),
    });
}

/// Splits a registry key into its metric name and an optional
/// `k="v",...` label body (no braces).
fn split_labels(key: &str) -> (&str, Option<&str>) {
    match (key.find('{'), key.ends_with('}')) {
        (Some(open), true) => (&key[..open], Some(&key[open + 1..key.len() - 1])),
        _ => (key, None),
    }
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// `name{labels}` with `extra` appended to any existing label body.
fn with_labels(name: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let body = match (labels, extra) {
        (Some(l), Some(e)) => format!("{l},{e}"),
        (Some(l), None) => l.to_string(),
        (None, Some(e)) => e.to_string(),
        (None, None) => return name.to_string(),
    };
    format!("{name}{{{body}}}")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as Prometheus text exposition (histograms as
/// summaries; see the module docs).
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for (key, value) in &snapshot.counters {
        let (raw, labels) = split_labels(key);
        let name = sanitize(raw);
        type_line(&mut out, &name, "counter");
        out.push_str(&format!("{} {}\n", with_labels(&name, labels, None), value));
    }
    for (key, value) in &snapshot.gauges {
        let (raw, labels) = split_labels(key);
        let name = sanitize(raw);
        type_line(&mut out, &name, "gauge");
        out.push_str(&format!("{} {}\n", with_labels(&name, labels, None), value));
    }
    for (key, hist) in &snapshot.histograms {
        let (raw, labels) = split_labels(key);
        let name = sanitize(raw);
        type_line(&mut out, &name, "summary");
        for q in [0.5, 0.95, 0.99] {
            out.push_str(&format!(
                "{} {}\n",
                with_labels(&name, labels, Some(&format!("quantile=\"{q}\""))),
                fmt_value(hist.percentile(q)),
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            with_labels(&format!("{name}_sum"), labels, None),
            hist.sum
        ));
        out.push_str(&format!(
            "{} {}\n",
            with_labels(&format!("{name}_count"), labels, None),
            hist.count
        ));
        out.push_str(&format!(
            "{} {}\n",
            with_labels(&format!("{name}_max"), labels, None),
            hist.max
        ));
    }
    out
}

/// Writes the Prometheus rendering of `snapshot` to `path`, atomically
/// (write-temp-then-rename), so a concurrent scraper never sees a
/// half-written file.
pub fn write_prometheus_file(snapshot: &RegistrySnapshot, path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension("prom.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(prometheus_text(snapshot).as_bytes())?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Appends one `metrics_snapshot` JSONL line for `snapshot` to `path`.
pub fn append_snapshot_jsonl(
    snapshot: &RegistrySnapshot,
    scope: &str,
    path: &Path,
) -> std::io::Result<()> {
    let event = Event::MetricsSnapshot {
        scope: scope.to_string(),
        snapshot: snapshot.clone(),
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", event.to_jsonl())
}

/// Where a [`SnapshotExporter`] writes.
#[derive(Debug, Clone, Default)]
pub struct ExportSinks {
    /// Append `metrics_snapshot` events here (one line per tick).
    pub jsonl: Option<PathBuf>,
    /// Rewrite Prometheus text exposition here each tick.
    pub prometheus: Option<PathBuf>,
}

struct ExporterShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A background thread exporting registry snapshots on an interval.
///
/// Each tick (and once more at shutdown, with scope `"final"`) the
/// exporter snapshots the registry — without blocking writers — and
/// writes to the configured [`ExportSinks`]. Dropping the exporter stops
/// the thread and performs the final export.
pub struct SnapshotExporter {
    shared: Arc<ExporterShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotExporter {
    /// Spawns the exporter thread.
    pub fn spawn(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        sinks: ExportSinks,
    ) -> SnapshotExporter {
        let shared = Arc::new(ExporterShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("obs-exporter".to_string())
            .spawn(move || {
                let export = |scope: &str| {
                    let snap = registry.snapshot();
                    if let Some(path) = &sinks.jsonl {
                        let _ = append_snapshot_jsonl(&snap, scope, path);
                    }
                    if let Some(path) = &sinks.prometheus {
                        let _ = write_prometheus_file(&snap, path);
                    }
                };
                loop {
                    let stopped = {
                        let guard = thread_shared
                            .stop
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        let (guard, _) = thread_shared
                            .wake
                            .wait_timeout_while(guard, interval, |stop| !*stop)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *guard
                    };
                    if stopped {
                        export("final");
                        return;
                    }
                    export("periodic");
                }
            })
            .expect("spawn obs-exporter thread");
        SnapshotExporter {
            shared,
            join: Some(join),
        }
    }

    /// Stops the thread, performing one final export before returning.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        *self
            .shared
            .stop
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.shared.wake.notify_all();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SnapshotExporter {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labeled;
    use crate::recorder::MemoryRecorder;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter(&labeled("serve_requests_total", &[("outcome", "ok")]))
            .add(12);
        reg.counter("serve_batches_total").add(4);
        reg.gauge("serve_queue_depth").set(2);
        let h = reg.histogram("serve_stage_infer_us");
        for v in [100u64, 200, 300, 40_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn record_snapshot_lands_in_the_event_log() {
        let reg = sample_registry();
        let rec = MemoryRecorder::new();
        record_snapshot(&reg, &rec, "final");
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::MetricsSnapshot { scope, snapshot } => {
                assert_eq!(scope, "final");
                assert_eq!(
                    snapshot.counter("serve_requests_total{outcome=\"ok\"}"),
                    Some(12)
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_has_types_labels_and_summaries() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total{outcome=\"ok\"} 12"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("# TYPE serve_stage_infer_us summary"));
        assert!(text.contains("serve_stage_infer_us{quantile=\"0.5\"}"));
        assert!(text.contains("serve_stage_infer_us_count 4"));
        assert!(text.contains("serve_stage_infer_us_sum 40600"));
        assert!(text.contains("serve_stage_infer_us_max 40000"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn labeled_histograms_merge_quantile_into_existing_labels() {
        let reg = MetricsRegistry::new();
        reg.histogram(&labeled("lat_us", &[("tenant", "a")]))
            .record(5);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("lat_us{tenant=\"a\",quantile=\"0.5\"} 5"));
        assert!(text.contains("lat_us_count{tenant=\"a\"} 1"));
    }

    #[test]
    fn exporter_writes_both_sinks_and_final_snapshot() {
        let dir =
            std::env::temp_dir().join(format!("cuttlefish-obs-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("metrics.jsonl");
        let prom = dir.join("metrics.prom");
        let _ = std::fs::remove_file(&jsonl);
        let registry = Arc::new(sample_registry());
        let exporter = SnapshotExporter::spawn(
            Arc::clone(&registry),
            Duration::from_millis(5),
            ExportSinks {
                jsonl: Some(jsonl.clone()),
                prometheus: Some(prom.clone()),
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        exporter.stop();

        let text = std::fs::read_to_string(&jsonl).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_jsonl_line(l).unwrap())
            .collect();
        assert!(!events.is_empty());
        let scopes: Vec<&str> = events
            .iter()
            .map(|e| match e {
                Event::MetricsSnapshot { scope, .. } => scope.as_str(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(*scopes.last().unwrap(), "final");

        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("serve_batches_total 4"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
