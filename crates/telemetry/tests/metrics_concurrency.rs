//! Concurrency guarantees of the live metrics plane: recording from N
//! threads — into one shared registry, or into per-thread registries
//! whose snapshots are merged — must be indistinguishable from recording
//! the same values sequentially. Counters must match exactly and
//! histograms bucket-for-bucket (not just within tolerance).

use std::sync::Arc;
use std::thread;

use cuttlefish_telemetry::{labeled, MetricsRegistry, RegistrySnapshot};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 5_000;

/// Deterministic per-thread value stream (xorshift), heavy-tailed enough
/// to touch exact, narrow, and wide histogram buckets.
fn values(thread: u64) -> impl Iterator<Item = u64> {
    let mut x = 0x5eed_0000 + thread * 0x9e37 + 1;
    (0..PER_THREAD).map(move |_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % 1_000_000
    })
}

fn record_all(reg: &MetricsRegistry, thread: u64) {
    let requests = reg.counter(&labeled("requests_total", &[("outcome", "ok")]));
    let hist = reg.histogram("lat_us");
    for v in values(thread) {
        requests.inc();
        hist.record(v);
    }
    reg.counter("threads_total").inc();
}

fn sequential_snapshot() -> RegistrySnapshot {
    let reg = MetricsRegistry::new();
    for t in 0..THREADS {
        record_all(&reg, t);
    }
    reg.snapshot()
}

fn assert_equivalent(actual: &RegistrySnapshot, expected: &RegistrySnapshot) {
    assert_eq!(actual.counters, expected.counters, "counter totals differ");
    let a = actual.histogram("lat_us").expect("histogram recorded");
    let e = expected.histogram("lat_us").expect("histogram recorded");
    assert_eq!(a.buckets, e.buckets, "bucket counts differ");
    assert_eq!(a.count, e.count);
    assert_eq!(a.sum, e.sum);
    assert_eq!(a.min, e.min);
    assert_eq!(a.max, e.max);
}

#[test]
fn shared_registry_concurrent_equals_sequential() {
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || record_all(&reg, t))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("threads_total"), Some(THREADS));
    assert_eq!(
        snap.counter("requests_total{outcome=\"ok\"}"),
        Some(THREADS * PER_THREAD)
    );
    assert_equivalent(&snap, &sequential_snapshot());
}

#[test]
fn merged_per_thread_snapshots_equal_sequential() {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                let reg = MetricsRegistry::new();
                record_all(&reg, t);
                reg.snapshot()
            })
        })
        .collect();
    let mut merged = RegistrySnapshot::default();
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    assert_equivalent(&merged, &sequential_snapshot());
}

#[test]
fn percentiles_are_stable_across_merge_order() {
    // Merging in any order must yield identical quantiles, because the
    // sparse bucket representation is canonical (index-sorted).
    let snaps: Vec<RegistrySnapshot> = (0..THREADS)
        .map(|t| {
            let reg = MetricsRegistry::new();
            record_all(&reg, t);
            reg.snapshot()
        })
        .collect();
    let mut forward = RegistrySnapshot::default();
    for s in &snaps {
        forward.merge(s);
    }
    let mut backward = RegistrySnapshot::default();
    for s in snaps.iter().rev() {
        backward.merge(s);
    }
    assert_eq!(forward, backward);
    let f = forward.histogram("lat_us").unwrap();
    let b = backward.histogram("lat_us").unwrap();
    for p in [0.5, 0.95, 0.99, 1.0] {
        assert_eq!(f.percentile(p), b.percentile(p));
    }
}
