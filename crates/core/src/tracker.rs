//! Per-layer stable-rank tracking and the switch-epoch detector (§3.4).
//!
//! Cuttlefish records `ϱ_l = {r⁰, r¹, …, rᵗ}` for every tracked layer and
//! switches to low-rank training when `dϱ_l/dt ≤ ε` for all of them. At
//! micro scale single-epoch differences are noisy, so the derivative is
//! estimated as the mean absolute first difference over a short trailing
//! window (window = 1 recovers the paper's raw rule; the window size is
//! ablated in the bench suite).

use serde::{Deserialize, Serialize};

/// Records stable-rank sequences for a set of named layers and decides
/// when they have all converged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankTracker {
    names: Vec<String>,
    /// `history[t][l]` = stable rank of layer `l` at epoch `t`.
    history: Vec<Vec<f32>>,
    epsilon: f32,
    window: usize,
}

impl RankTracker {
    /// Creates a tracker for the given layers with stabilization threshold
    /// `epsilon` (the paper uses 0.1) and derivative window `window ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `names` is empty.
    pub fn new(names: Vec<String>, epsilon: f32, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        assert!(!names.is_empty(), "tracker needs at least one layer");
        RankTracker {
            names,
            history: Vec::new(),
            epsilon,
            window,
        }
    }

    /// The tracked layer names, in recording order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.history.len()
    }

    /// Records one epoch of stable ranks (same order as `names`).
    ///
    /// # Panics
    ///
    /// Panics if `ranks.len() != names.len()`.
    pub fn record(&mut self, ranks: Vec<f32>) {
        assert_eq!(ranks.len(), self.names.len(), "rank vector width mismatch");
        self.history.push(ranks);
    }

    /// The full `epoch × layer` history (for Figures 2/3).
    pub fn history(&self) -> &[Vec<f32>] {
        &self.history
    }

    /// The recorded sequence of a single layer.
    pub fn series(&self, layer: usize) -> Vec<f32> {
        self.history.iter().map(|row| row[layer]).collect()
    }

    /// Mean absolute first difference of layer `l`'s sequence over the
    /// trailing window — the `dϱ_l/dt` estimate.
    ///
    /// Returns `None` until enough epochs are recorded (`window + 1`).
    pub fn derivative(&self, layer: usize) -> Option<f32> {
        let t = self.history.len();
        if t < self.window + 1 {
            return None;
        }
        let mut acc = 0.0f32;
        for i in (t - self.window)..t {
            acc += (self.history[i][layer] - self.history[i - 1][layer]).abs();
        }
        Some(acc / self.window as f32)
    }

    /// Whether every tracked layer's derivative is ≤ ε — the Algorithm 1
    /// switch condition.
    pub fn converged(&self) -> bool {
        if self.history.is_empty() {
            return false;
        }
        (0..self.names.len()).all(|l| match self.derivative(l) {
            Some(d) => d <= self.epsilon,
            None => false,
        })
    }

    /// The last recorded stable ranks (the values used as `R` at the
    /// switch), if any epoch has been recorded.
    pub fn latest(&self) -> Option<&[f32]> {
        self.history.last().map(|v| v.as_slice())
    }

    /// The stabilization threshold ε this tracker compares derivatives
    /// against.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Per-layer verdicts at the current epoch: `(name, |dϱ/dt|,
    /// stabilized)`. The derivative is `None` (and the verdict `false`)
    /// until `window + 1` epochs are recorded. Feeds the telemetry
    /// `TrackerVerdict` event.
    pub fn verdicts(&self) -> Vec<(String, Option<f32>, bool)> {
        self.names
            .iter()
            .enumerate()
            .map(|(l, name)| {
                let d = self.derivative(l);
                let stabilized = matches!(d, Some(d) if d <= self.epsilon);
                (name.clone(), d, stabilized)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(eps: f32, window: usize) -> RankTracker {
        RankTracker::new(vec!["a".into(), "b".into()], eps, window)
    }

    #[test]
    fn not_converged_without_history() {
        let t = tracker(0.1, 1);
        assert!(!t.converged());
        assert_eq!(t.latest(), None);
    }

    #[test]
    fn needs_window_plus_one_epochs() {
        let mut t = tracker(0.1, 2);
        t.record(vec![5.0, 8.0]);
        t.record(vec![5.0, 8.0]);
        assert_eq!(t.derivative(0), None);
        assert!(!t.converged());
        t.record(vec![5.0, 8.0]);
        assert_eq!(t.derivative(0), Some(0.0));
        assert!(t.converged());
    }

    #[test]
    fn converges_when_flat() {
        let mut t = tracker(0.1, 1);
        t.record(vec![10.0, 20.0]);
        t.record(vec![10.05, 20.02]);
        assert!(t.converged());
    }

    #[test]
    fn one_moving_layer_blocks_convergence() {
        let mut t = tracker(0.1, 1);
        t.record(vec![10.0, 20.0]);
        t.record(vec![10.0, 21.0]); // layer b still moving
        assert!(!t.converged());
        t.record(vec![10.0, 21.05]);
        assert!(t.converged());
    }

    #[test]
    fn window_smooths_single_epoch_noise() {
        // A single noisy jump inside an otherwise flat tail should not
        // block convergence when averaged over a window of 3.
        let mut t = tracker(0.15, 3);
        for r in [10.0, 10.0, 10.0, 10.3, 10.0, 10.0] {
            t.record(vec![r, 5.0]);
        }
        // Mean |diff| over last 3 epochs: (0.3 + 0.3 + 0.0)/3 = 0.2 > ε at
        // the jump, but once it falls out of the window we converge.
        t.record(vec![10.0, 5.0]);
        assert!(t.converged());
    }

    #[test]
    fn series_and_latest() {
        let mut t = tracker(0.1, 1);
        t.record(vec![1.0, 2.0]);
        t.record(vec![3.0, 4.0]);
        assert_eq!(t.series(0), vec![1.0, 3.0]);
        assert_eq!(t.latest().unwrap(), &[3.0, 4.0]);
        assert_eq!(t.epochs(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn record_checks_width() {
        let mut t = tracker(0.1, 1);
        t.record(vec![1.0]);
    }

    #[test]
    fn verdicts_mirror_convergence_state() {
        let mut t = tracker(0.1, 1);
        assert_eq!(t.epsilon(), 0.1);
        let v = t.verdicts();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|(_, d, s)| d.is_none() && !s));
        t.record(vec![10.0, 20.0]);
        t.record(vec![10.0, 21.0]); // b still moving
        let v = t.verdicts();
        assert_eq!(v[0], ("a".to_string(), Some(0.0), true));
        assert_eq!(v[1].0, "b");
        assert!(!v[1].2);
        assert_eq!(
            t.converged(),
            v.iter().all(|(_, _, stabilized)| *stabilized)
        );
    }
}
