//! Exporting a trained network into a servable checkpoint artifact.
//!
//! Training ends with a live [`Network`] in memory; serving starts from a
//! checkpoint file on disk. [`export_checkpoint`] is the bridge: it runs
//! [`Network::verify`] so a malformed model (dangling target, broken
//! factor shapes, graph mismatch) is refused *before* anything is written,
//! then captures the trainable state and writes it atomically with
//! [`Checkpoint::save_to_path`]. The artifact can be rebuilt into a
//! serving replica by `cuttlefish-serve`'s `FrozenModel`.

use std::path::Path;

use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::{Network, VerifyReport};

use crate::CfResult;

/// What [`export_checkpoint`] proved and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportReport {
    /// The static verification outcome for the exported model.
    pub verify: VerifyReport,
    /// Number of parameter matrices captured into the artifact.
    pub params: usize,
    /// Number of factorization targets captured in the factored state.
    pub factored_targets: usize,
    /// Where the checkpoint was written.
    pub path: String,
}

/// Verifies `net`, captures its trainable state, and writes the checkpoint
/// atomically to `path`.
///
/// The verify step runs first so nothing is written for a model that would
/// fail to serve; the write itself goes through a same-directory temp file
/// plus rename, so a crash mid-export never leaves a truncated artifact
/// under `path`.
///
/// # Errors
///
/// Returns [`crate::CuttlefishError::Verify`] when static verification
/// fails and [`crate::CuttlefishError::Nn`] when serialization or the
/// atomic write fails; in both cases no file exists at `path` that was not
/// already there.
pub fn export_checkpoint(net: &mut Network, path: impl AsRef<Path>) -> CfResult<ExportReport> {
    let path = path.as_ref();
    let verify = net.verify()?;
    let ckpt = Checkpoint::capture(net);
    ckpt.save_to_path(path)?;
    Ok(ExportReport {
        params: ckpt.params.len(),
        factored_targets: ckpt.targets.iter().filter(|t| t.rank.is_some()).count(),
        verify,
        path: path.display().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn export_verifies_then_writes_loadable_artifact() {
        let mut net =
            build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(0));
        let dir = std::env::temp_dir().join(format!("cuttlefish-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exported.ckpt.json");
        let report = export_checkpoint(&mut net, &path).unwrap();
        assert_eq!(report.verify.network, "micro-resnet18");
        assert!(report.params > 0);
        assert_eq!(report.factored_targets, 0);
        let back = Checkpoint::load_from_path(&path).unwrap();
        assert_eq!(back.params.len(), report.params);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_refuses_unverifiable_model_without_writing() {
        let mut net =
            build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(1));
        // Break graph verification: declare an input the stem rejects.
        net.set_input_shape(cuttlefish_nn::SymShape::Flat { features: 7 });
        let dir =
            std::env::temp_dir().join(format!("cuttlefish-export-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("never.ckpt.json");
        let err = export_checkpoint(&mut net, &path).unwrap_err();
        assert!(matches!(err, crate::CuttlefishError::Verify(_)));
        assert!(!path.exists(), "failed export must not write an artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
