//! Controller configuration types.

use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_perf::DeviceProfile;
use serde::{Deserialize, Serialize};

/// How the factorization rank of a layer is derived from its spectrum at
/// the switch epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankRule {
    /// Vanilla stable rank (ablated in Tables 15–16; aggressive).
    Vanilla,
    /// Scaled stable rank (§3.3) — the paper's default.
    Scaled,
    /// `max(scaled stable rank, accumulative rank(Σ, p))` — the Appendix
    /// C.2 rule for transformer weights with flat spectra.
    ScaledWithAccumulative {
        /// Spectrum-mass fraction `p` (the appendix example uses 0.8).
        p: f32,
    },
}

/// Cuttlefish's own knobs. These are *not* tuned per task: the paper fixes
/// ε = 0.1 and v = 1.5 everywhere, ρ̄ = 1/4 for profiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuttlefishConfig {
    /// Rank-stabilization threshold ε.
    pub epsilon: f32,
    /// Derivative smoothing window (1 = the paper's raw single-step rule).
    pub window: usize,
    /// Profiling speedup threshold v.
    pub v: f64,
    /// Profiling probe rank ratio ρ̄.
    pub rho_bar: f32,
    /// Rank rule for CNN weights.
    pub rank_rule: RankRule,
    /// Rank rule for transformer weights (`TargetKind::Linear` with
    /// `transformer = true`).
    pub transformer_rank_rule: RankRule,
    /// Insert an extra BatchNorm between factors (§4.1).
    pub extra_bn: bool,
    /// Frobenius-decay coefficient λ; `None` uses plain L2 on the factors.
    pub frobenius_decay: Option<f32>,
    /// Hard ceiling on full-rank epochs (fraction of total), so the switch
    /// always happens with enough low-rank epochs left.
    pub max_full_rank_fraction: f32,
    /// Multiply the LR schedule by this factor after the switch
    /// (Appendix C.2 decays the base LR for DeiT/ResMLP).
    pub post_switch_lr_scale: f32,
}

impl Default for CuttlefishConfig {
    fn default() -> Self {
        CuttlefishConfig {
            epsilon: 0.1,
            window: 2,
            v: 1.5,
            rho_bar: 0.25,
            rank_rule: RankRule::Scaled,
            transformer_rank_rule: RankRule::ScaledWithAccumulative { p: 0.8 },
            extra_bn: false,
            frobenius_decay: None,
            max_full_rank_fraction: 0.5,
            post_switch_lr_scale: 1.0,
        }
    }
}

/// When and how the run transitions from full-rank to low-rank training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// Train full-rank for the whole run (the "vanilla" rows).
    FullRankOnly,
    /// The paper's automated controller.
    Cuttlefish(CuttlefishConfig),
    /// Manually-tuned schedule (the Pufferfish baseline): switch at epoch
    /// `full_rank_epochs`, keep the first `k` targets full-rank, and
    /// factorize the rest at `rank_ratio · full_rank`.
    Manual {
        /// Full-rank warm-up epochs `E`.
        full_rank_epochs: usize,
        /// Number of leading targets kept full-rank `K`.
        k: usize,
        /// Global rank ratio ρ.
        rank_ratio: f32,
        /// Insert extra BatchNorms between factors.
        extra_bn: bool,
        /// Frobenius-decay coefficient.
        frobenius_decay: Option<f32>,
    },
    /// Spectral initialization (the SI&FD baseline, Khodak et al.):
    /// factorize at epoch 0 with `K = 1` and a tuned global ratio,
    /// training with Frobenius decay from the start.
    SpectralInit {
        /// Global rank ratio ρ.
        rank_ratio: f32,
        /// Frobenius-decay coefficient.
        frobenius_decay: Option<f32>,
    },
}

/// Which optimizer drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD with momentum and L2 weight decay (CNN experiments).
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
        /// Weight-decay coefficient.
        weight_decay: f32,
    },
    /// AdamW (transformer/mixer/BERT experiments).
    AdamW {
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
}

/// Generic training-run configuration shared by Cuttlefish and every
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Total epochs `T`.
    pub total_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Label smoothing for classification losses.
    pub label_smoothing: f32,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// RNG seed for batching/augmentation.
    pub seed: u64,
    /// Device model for the simulated clock and profiling.
    pub device: DeviceProfile,
    /// Batch size the *simulated* device runs (the paper's hardware batch,
    /// e.g. 1024 on V100; may differ from the micro-training batch).
    pub sim_batch: usize,
    /// Iterations per epoch on the simulated workload (e.g. 49 for
    /// CIFAR-50k at batch 1024, 5004 for ImageNet at batch 256).
    pub sim_iters_per_epoch: usize,
    /// Evaluate the validation metric every this many epochs.
    pub eval_every: usize,
    /// Record per-epoch stable ranks even when the policy doesn't need
    /// them (Figures 2/3 on full-rank runs).
    pub track_ranks: bool,
}

impl TrainerConfig {
    /// Sensible defaults for micro CNN runs: SGD momentum 0.9, weight
    /// decay 1e-4, Goyal-style schedule, V100 clock at batch 1024.
    pub fn cnn_default(total_epochs: usize, seed: u64) -> Self {
        TrainerConfig {
            total_epochs,
            batch_size: 64,
            schedule: LrSchedule::goyal(0.4, total_epochs),
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
            grad_clip: None,
            seed,
            device: DeviceProfile::v100(),
            sim_batch: 1024,
            sim_iters_per_epoch: 49,
            eval_every: 1,
            track_ranks: false,
        }
    }

    /// Defaults for transformer/mixer runs: AdamW + cosine schedule.
    pub fn transformer_default(total_epochs: usize, seed: u64) -> Self {
        TrainerConfig {
            total_epochs,
            batch_size: 32,
            schedule: LrSchedule::WarmupCosine {
                peak_lr: 3e-3,
                min_lr: 1e-5,
                warmup_epochs: (total_epochs / 10).max(1),
                total_epochs,
            },
            optimizer: OptimizerKind::AdamW { weight_decay: 0.05 },
            label_smoothing: 0.1,
            grad_clip: Some(1.0),
            seed,
            device: DeviceProfile::a100(),
            sim_batch: 256,
            sim_iters_per_epoch: 5004,
            eval_every: 1,
            track_ranks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_constants() {
        let c = CuttlefishConfig::default();
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.v, 1.5);
        assert_eq!(c.rho_bar, 0.25);
        assert!(matches!(c.rank_rule, RankRule::Scaled));
    }

    #[test]
    fn presets_are_distinct() {
        let cnn = TrainerConfig::cnn_default(30, 0);
        let tfm = TrainerConfig::transformer_default(30, 0);
        assert!(matches!(cnn.optimizer, OptimizerKind::Sgd { .. }));
        assert!(matches!(tfm.optimizer, OptimizerKind::AdamW { .. }));
        assert_ne!(cnn.device.name, tfm.device.name);
    }

    #[test]
    fn config_serializes() {
        let c = CuttlefishConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CuttlefishConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
