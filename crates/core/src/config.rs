//! Controller configuration types.

use crate::CuttlefishError;
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_perf::DeviceProfile;
use serde::{Deserialize, Serialize};

/// How the factorization rank of a layer is derived from its spectrum at
/// the switch epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankRule {
    /// Vanilla stable rank (ablated in Tables 15–16; aggressive).
    Vanilla,
    /// Scaled stable rank (§3.3) — the paper's default.
    Scaled,
    /// `max(scaled stable rank, accumulative rank(Σ, p))` — the Appendix
    /// C.2 rule for transformer weights with flat spectra.
    ScaledWithAccumulative {
        /// Spectrum-mass fraction `p` (the appendix example uses 0.8).
        p: f32,
    },
}

/// Cuttlefish's own knobs. These are *not* tuned per task: the paper fixes
/// ε = 0.1 and v = 1.5 everywhere, ρ̄ = 1/4 for profiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuttlefishConfig {
    /// Rank-stabilization threshold ε.
    pub epsilon: f32,
    /// Derivative smoothing window (1 = the paper's raw single-step rule).
    pub window: usize,
    /// Profiling speedup threshold v.
    pub v: f64,
    /// Profiling probe rank ratio ρ̄.
    pub rho_bar: f32,
    /// Rank rule for CNN weights.
    pub rank_rule: RankRule,
    /// Rank rule for transformer weights (`TargetKind::Linear` with
    /// `transformer = true`).
    pub transformer_rank_rule: RankRule,
    /// Insert an extra BatchNorm between factors (§4.1).
    pub extra_bn: bool,
    /// Frobenius-decay coefficient λ; `None` uses plain L2 on the factors.
    pub frobenius_decay: Option<f32>,
    /// Hard ceiling on full-rank epochs (fraction of total), so the switch
    /// always happens with enough low-rank epochs left.
    pub max_full_rank_fraction: f32,
    /// Multiply the LR schedule by this factor after the switch
    /// (Appendix C.2 decays the base LR for DeiT/ResMLP).
    pub post_switch_lr_scale: f32,
}

impl Default for CuttlefishConfig {
    fn default() -> Self {
        CuttlefishConfig {
            epsilon: 0.1,
            window: 2,
            v: 1.5,
            rho_bar: 0.25,
            rank_rule: RankRule::Scaled,
            transformer_rank_rule: RankRule::ScaledWithAccumulative { p: 0.8 },
            extra_bn: false,
            frobenius_decay: None,
            max_full_rank_fraction: 0.5,
            post_switch_lr_scale: 1.0,
        }
    }
}

fn invalid(field: &'static str, detail: impl Into<String>) -> CuttlefishError {
    CuttlefishError::InvalidConfig {
        field,
        detail: detail.into(),
    }
}

impl CuttlefishConfig {
    /// Validates the controller's knobs before any training starts.
    ///
    /// # Errors
    ///
    /// Returns [`CuttlefishError::InvalidConfig`] naming the first bad
    /// field: ε must be finite and positive, the smoothing window
    /// non-empty, the profiling threshold `v ≥ 1` (a speedup below 1×
    /// would always refuse to factorize), `ρ̄ ∈ (0, 1]`, and the remaining
    /// fractions/scales finite and in range.
    pub fn validate(&self) -> Result<(), CuttlefishError> {
        // `+inf` is a supported idiom: "treat every layer as converged at
        // the first derivative sample" (short fine-tuning runs, E ≈ 1).
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err(invalid(
                "epsilon",
                format!("must be > 0 (inf allowed), got {}", self.epsilon),
            ));
        }
        if self.window == 0 {
            return Err(invalid("window", "smoothing window must be non-empty"));
        }
        if !self.v.is_finite() || self.v < 1.0 {
            return Err(invalid(
                "v",
                format!("speedup threshold must be >= 1, got {}", self.v),
            ));
        }
        if !self.rho_bar.is_finite() || self.rho_bar <= 0.0 || self.rho_bar > 1.0 {
            return Err(invalid(
                "rho_bar",
                format!("probe rank ratio must be in (0, 1], got {}", self.rho_bar),
            ));
        }
        for (name, rule) in [
            ("rank_rule", &self.rank_rule),
            ("transformer_rank_rule", &self.transformer_rank_rule),
        ] {
            if let RankRule::ScaledWithAccumulative { p } = rule {
                if !p.is_finite() || *p <= 0.0 || *p > 1.0 {
                    return Err(invalid(
                        name,
                        format!("accumulative-rank mass p must be in (0, 1], got {p}"),
                    ));
                }
            }
        }
        if let Some(fd) = self.frobenius_decay {
            if !fd.is_finite() || fd < 0.0 {
                return Err(invalid(
                    "frobenius_decay",
                    format!("must be finite and >= 0, got {fd}"),
                ));
            }
        }
        if !self.max_full_rank_fraction.is_finite()
            || self.max_full_rank_fraction <= 0.0
            || self.max_full_rank_fraction > 1.0
        {
            return Err(invalid(
                "max_full_rank_fraction",
                format!("must be in (0, 1], got {}", self.max_full_rank_fraction),
            ));
        }
        if !self.post_switch_lr_scale.is_finite() || self.post_switch_lr_scale <= 0.0 {
            return Err(invalid(
                "post_switch_lr_scale",
                format!("must be finite and > 0, got {}", self.post_switch_lr_scale),
            ));
        }
        Ok(())
    }
}

/// When and how the run transitions from full-rank to low-rank training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// Train full-rank for the whole run (the "vanilla" rows).
    FullRankOnly,
    /// The paper's automated controller.
    Cuttlefish(CuttlefishConfig),
    /// Manually-tuned schedule (the Pufferfish baseline): switch at epoch
    /// `full_rank_epochs`, keep the first `k` targets full-rank, and
    /// factorize the rest at `rank_ratio · full_rank`.
    Manual {
        /// Full-rank warm-up epochs `E`.
        full_rank_epochs: usize,
        /// Number of leading targets kept full-rank `K`.
        k: usize,
        /// Global rank ratio ρ.
        rank_ratio: f32,
        /// Insert extra BatchNorms between factors.
        extra_bn: bool,
        /// Frobenius-decay coefficient.
        frobenius_decay: Option<f32>,
    },
    /// Spectral initialization (the SI&FD baseline, Khodak et al.):
    /// factorize at epoch 0 with `K = 1` and a tuned global ratio,
    /// training with Frobenius decay from the start.
    SpectralInit {
        /// Global rank ratio ρ.
        rank_ratio: f32,
        /// Frobenius-decay coefficient.
        frobenius_decay: Option<f32>,
    },
}

impl SwitchPolicy {
    /// Validates policy-specific parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CuttlefishError::InvalidConfig`] naming the first bad
    /// field; delegates to [`CuttlefishConfig::validate`] for the
    /// automated controller.
    pub fn validate(&self) -> Result<(), CuttlefishError> {
        fn ratio_ok(name: &'static str, rho: f32) -> Result<(), CuttlefishError> {
            if !rho.is_finite() || rho <= 0.0 || rho > 1.0 {
                return Err(invalid(
                    name,
                    format!("rank ratio must be in (0, 1], got {rho}"),
                ));
            }
            Ok(())
        }
        match self {
            SwitchPolicy::FullRankOnly => Ok(()),
            SwitchPolicy::Cuttlefish(cfg) => cfg.validate(),
            SwitchPolicy::Manual { rank_ratio, .. } => ratio_ok("rank_ratio", *rank_ratio),
            SwitchPolicy::SpectralInit { rank_ratio, .. } => ratio_ok("rank_ratio", *rank_ratio),
        }
    }
}

/// Which optimizer drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD with momentum and L2 weight decay (CNN experiments).
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
        /// Weight-decay coefficient.
        weight_decay: f32,
    },
    /// AdamW (transformer/mixer/BERT experiments).
    AdamW {
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
}

/// Generic training-run configuration shared by Cuttlefish and every
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Total epochs `T`.
    pub total_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Label smoothing for classification losses.
    pub label_smoothing: f32,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// RNG seed for batching/augmentation.
    pub seed: u64,
    /// Device model for the simulated clock and profiling.
    pub device: DeviceProfile,
    /// Batch size the *simulated* device runs (the paper's hardware batch,
    /// e.g. 1024 on V100; may differ from the micro-training batch).
    pub sim_batch: usize,
    /// Iterations per epoch on the simulated workload (e.g. 49 for
    /// CIFAR-50k at batch 1024, 5004 for ImageNet at batch 256).
    pub sim_iters_per_epoch: usize,
    /// Evaluate the validation metric every this many epochs.
    pub eval_every: usize,
    /// Record per-epoch stable ranks even when the policy doesn't need
    /// them (Figures 2/3 on full-rank runs).
    pub track_ranks: bool,
}

impl TrainerConfig {
    /// Validates the run-level parameters: epochs/batch sizes must be
    /// non-zero, the LR schedule well-formed (finite positive rates,
    /// strictly increasing milestones), and smoothing/clip values in
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`CuttlefishError::InvalidConfig`] naming the first bad
    /// field.
    pub fn validate(&self) -> Result<(), CuttlefishError> {
        if self.total_epochs == 0 {
            return Err(invalid("total_epochs", "must be > 0"));
        }
        if self.batch_size == 0 {
            return Err(invalid("batch_size", "must be > 0"));
        }
        self.schedule
            .validate()
            .map_err(|detail| invalid("schedule", detail))?;
        if !self.label_smoothing.is_finite()
            || self.label_smoothing < 0.0
            || self.label_smoothing >= 1.0
        {
            return Err(invalid(
                "label_smoothing",
                format!("must be in [0, 1), got {}", self.label_smoothing),
            ));
        }
        if let Some(clip) = self.grad_clip {
            if !clip.is_finite() || clip <= 0.0 {
                return Err(invalid(
                    "grad_clip",
                    format!("must be finite and > 0, got {clip}"),
                ));
            }
        }
        if self.sim_batch == 0 {
            return Err(invalid("sim_batch", "must be > 0"));
        }
        if self.sim_iters_per_epoch == 0 {
            return Err(invalid("sim_iters_per_epoch", "must be > 0"));
        }
        if self.eval_every == 0 {
            return Err(invalid("eval_every", "must be > 0"));
        }
        Ok(())
    }

    /// Sensible defaults for micro CNN runs: SGD momentum 0.9, weight
    /// decay 1e-4, Goyal-style schedule, V100 clock at batch 1024.
    pub fn cnn_default(total_epochs: usize, seed: u64) -> Self {
        TrainerConfig {
            total_epochs,
            batch_size: 64,
            schedule: LrSchedule::goyal(0.4, total_epochs),
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
            grad_clip: None,
            seed,
            device: DeviceProfile::v100(),
            sim_batch: 1024,
            sim_iters_per_epoch: 49,
            eval_every: 1,
            track_ranks: false,
        }
    }

    /// Defaults for transformer/mixer runs: AdamW + cosine schedule.
    pub fn transformer_default(total_epochs: usize, seed: u64) -> Self {
        TrainerConfig {
            total_epochs,
            batch_size: 32,
            schedule: LrSchedule::WarmupCosine {
                peak_lr: 3e-3,
                min_lr: 1e-5,
                warmup_epochs: (total_epochs / 10).max(1),
                total_epochs,
            },
            optimizer: OptimizerKind::AdamW { weight_decay: 0.05 },
            label_smoothing: 0.1,
            grad_clip: Some(1.0),
            seed,
            device: DeviceProfile::a100(),
            sim_batch: 256,
            sim_iters_per_epoch: 5004,
            eval_every: 1,
            track_ranks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_constants() {
        let c = CuttlefishConfig::default();
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.v, 1.5);
        assert_eq!(c.rho_bar, 0.25);
        assert!(matches!(c.rank_rule, RankRule::Scaled));
    }

    #[test]
    fn presets_are_distinct() {
        let cnn = TrainerConfig::cnn_default(30, 0);
        let tfm = TrainerConfig::transformer_default(30, 0);
        assert!(matches!(cnn.optimizer, OptimizerKind::Sgd { .. }));
        assert!(matches!(tfm.optimizer, OptimizerKind::AdamW { .. }));
        assert_ne!(cnn.device.name, tfm.device.name);
    }

    #[test]
    fn config_serializes() {
        let c = CuttlefishConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CuttlefishConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn defaults_pass_validation() {
        assert!(CuttlefishConfig::default().validate().is_ok());
        assert!(TrainerConfig::cnn_default(30, 0).validate().is_ok());
        assert!(TrainerConfig::transformer_default(30, 0).validate().is_ok());
        assert!(SwitchPolicy::FullRankOnly.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        fn with(f: impl FnOnce(&mut CuttlefishConfig)) -> CuttlefishConfig {
            let mut c = CuttlefishConfig::default();
            f(&mut c);
            c
        }
        assert!(matches!(
            with(|c| c.epsilon = 0.0).validate(),
            Err(CuttlefishError::InvalidConfig {
                field: "epsilon",
                ..
            })
        ));
        assert!(with(|c| c.epsilon = f32::NAN).validate().is_err());
        // +inf epsilon is the "switch at first sample" idiom and is legal.
        assert!(with(|c| c.epsilon = f32::INFINITY).validate().is_ok());
        assert!(matches!(
            with(|c| c.window = 0).validate(),
            Err(CuttlefishError::InvalidConfig {
                field: "window",
                ..
            })
        ));
        assert!(matches!(
            with(|c| c.v = 0.5).validate(),
            Err(CuttlefishError::InvalidConfig { field: "v", .. })
        ));
        assert!(with(|c| c.rho_bar = 1.5).validate().is_err());
    }

    #[test]
    fn trainer_validation_rejects_bad_schedule() {
        let mut t = TrainerConfig::cnn_default(30, 0);
        t.schedule = LrSchedule::WarmupMultiStep {
            base_lr: 0.1,
            peak_lr: 0.8,
            warmup_epochs: 5,
            milestones: vec![20, 10],
            gamma: 0.1,
        };
        assert!(matches!(
            t.validate(),
            Err(CuttlefishError::InvalidConfig {
                field: "schedule",
                ..
            })
        ));
        t = TrainerConfig::cnn_default(30, 0);
        t.total_epochs = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn policy_validation_rejects_bad_ratio() {
        let p = SwitchPolicy::Manual {
            full_rank_epochs: 5,
            k: 1,
            rank_ratio: 0.0,
            extra_bn: false,
            frobenius_decay: None,
        };
        assert!(p.validate().is_err());
        let p = SwitchPolicy::Cuttlefish(CuttlefishConfig {
            v: 0.9,
            ..CuttlefishConfig::default()
        });
        assert!(matches!(
            p.validate(),
            Err(CuttlefishError::InvalidConfig { field: "v", .. })
        ));
    }
}
