//! **Cuttlefish**: automated low-rank factorized training without
//! factorization hyperparameter tuning — a from-scratch Rust reproduction
//! of Wang et al., *Cuttlefish: Low-Rank Model Training without All the
//! Tuning* (MLSys 2023).
//!
//! Low-rank training replaces a weight `W` with a product `U·Vᵀ`, cutting
//! parameters and (for compute-bound layers) wall-clock time — but it
//! introduces three hyperparameters: the full-rank warm-up length `E`, the
//! number of leading layers `K` to leave unfactorized, and the per-layer
//! ranks `R`. Cuttlefish picks all three automatically, during training:
//!
//! 1. **`R` and `E` from stable ranks** ([`rank`], [`tracker`]): the
//!    *stable rank* `‖W‖_F² / σ_max²` of each layer changes rapidly early
//!    in training and then flattens (paper Figure 2). Cuttlefish tracks the
//!    (scaled) stable rank of every layer each epoch and switches from
//!    full-rank to low-rank training the first epoch at which every
//!    tracked layer's sequence has derivative ≤ ε, using the converged
//!    values as the factorization ranks.
//! 2. **`K` from profiling** ([`profile`]): factorizing early CNN stacks
//!    buys no wall-clock (low arithmetic intensity / thin-kernel occupancy,
//!    paper §3.5 and Figure 4), so Cuttlefish times each layer stack
//!    full-rank vs. factorized at a probe ratio ρ̄ and only factorizes
//!    stacks that speed up by at least `v×`.
//! 3. **The switch itself** ([`factorize`]): each chosen layer is SVD-split
//!    as `U = Ũ Σ^{1/2}`, `Vᵀ = Σ^{1/2} Ṽᵀ`, truncated at its chosen rank
//!    (Algorithm 1), optionally with Frobenius decay and an extra BatchNorm
//!    between the factors (§4.1).
//!
//! The end-to-end controller is [`trainer::run_training`], which also
//! drives the manually-tuned ("Pufferfish"-style) and full-rank-only modes
//! used by the paper's baselines, and charges a simulated
//! [`cuttlefish_perf::TrainingClock`] so end-to-end "time" columns can be
//! reproduced.
//!
//! # Example
//!
//! ```
//! use cuttlefish::rank::{stable_rank, scaled_stable_rank};
//!
//! // A spectrum with one dominant direction has stable rank near 1...
//! assert!((stable_rank(&[10.0, 0.1, 0.1]) - 1.0).abs() < 0.01);
//! // ...and a flat spectrum has full stable rank.
//! assert!((stable_rank(&[2.0, 2.0, 2.0]) - 3.0).abs() < 1e-4);
//! // The scaling calibrates against the value at initialization (§3.3).
//! let xi = 4.0 / stable_rank(&[1.0, 0.9, 0.8, 0.1]);
//! assert!(scaled_stable_rank(&[1.0, 0.9, 0.8, 0.1], xi) > 3.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod adapter;
pub mod config;
pub mod export;
pub mod factorize;
pub mod profile;
pub mod rank;
pub mod tracker;
pub mod trainer;

pub use config::{CuttlefishConfig, OptimizerKind, RankRule, SwitchPolicy, TrainerConfig};
pub use error::CuttlefishError;
pub use export::{export_checkpoint, ExportReport};
pub use trainer::{run_training, run_training_with, RunResult, StepEngine};

/// Result alias for this crate.
pub type CfResult<T> = std::result::Result<T, CuttlefishError>;

/// Reads the current `cuttlefish-tensor` kernel counters as the telemetry
/// snapshot type. All zeros unless the tensor crate's `telemetry` feature
/// is enabled, so callers can diff snapshots unconditionally.
pub fn kernel_counters_snapshot() -> cuttlefish_telemetry::KernelCounters {
    let s = cuttlefish_tensor::counters::snapshot();
    cuttlefish_telemetry::KernelCounters {
        matmul_calls: s.matmul_calls,
        matmul_flops: s.matmul_flops,
        im2col_calls: s.im2col_calls,
        im2col_elems: s.im2col_elems,
        svd_sweeps: s.svd_sweeps,
        power_iters: s.power_iters,
    }
}
