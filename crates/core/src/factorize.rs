//! The full-rank → low-rank switch (Algorithm 1, lines at `t = Ê + 1`).
//!
//! Every eligible layer is decomposed as `Ũ Σ Ṽᵀ = SVD(W)`, the rank is
//! chosen by the configured [`RankRule`] (or a fixed ratio for the manual
//! baselines), and the layer's weight is replaced in place by
//! `U = Ũ Σ^{1/2}[:, :r]`, `Vᵀ = Σ^{1/2} Ṽᵀ[:r, :]`.
//!
//! Skip rules (in order): the first `K̂` targets stay full-rank; the final
//! classifier never factorizes (§3.2); and — in automatic mode — layers
//! whose chosen rank would not reduce parameters are left dense, which is
//! exactly why square attention output projections survive at ρ = 1/2
//! (Appendix C.2).

use crate::config::RankRule;
use crate::rank::{accumulative_rank, clamp_rank, scaled_stable_rank, stable_rank};
use crate::CfResult;
use cuttlefish_nn::{Network, TargetKind};
use cuttlefish_telemetry::{span, Event, NullRecorder, RankDecisionEvent, Recorder};
use cuttlefish_tensor::svd::Svd;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why a target was left at full rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// Within the first `K̂` layers.
    WithinK,
    /// The final classifier layer.
    LastLayer,
    /// Factorizing at the chosen rank would not reduce parameters.
    NoReduction,
}

impl SkipReason {
    /// The stable snake_case name used in the telemetry JSONL schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            SkipReason::WithinK => "within_k",
            SkipReason::LastLayer => "last_layer",
            SkipReason::NoReduction => "no_reduction",
        }
    }
}

/// The per-target outcome of the switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankDecision {
    /// Target name.
    pub name: String,
    /// 1-based depth index.
    pub index: usize,
    /// Stack id.
    pub stack: usize,
    /// `min(rows, cols)` of the weight.
    pub full_rank: usize,
    /// The raw (possibly fractional) rank estimate before clamping.
    pub estimate: f32,
    /// `Some(r)` if factorized at rank `r`, `None` if skipped.
    pub chosen: Option<usize>,
    /// Skip reason when `chosen` is `None`.
    pub skip: Option<SkipReason>,
}

impl RankDecision {
    /// Rank ratio `r / full_rank` (1.0 when kept dense).
    pub fn ratio(&self) -> f32 {
        match self.chosen {
            Some(r) => r as f32 / self.full_rank.max(1) as f32,
            None => 1.0,
        }
    }

    /// The telemetry mirror of this decision (the event type is owned by
    /// `cuttlefish-telemetry` so the dependency arrow keeps pointing
    /// downward).
    pub fn to_event(&self) -> RankDecisionEvent {
        RankDecisionEvent {
            layer: self.name.clone(),
            index: self.index,
            stack: self.stack,
            full_rank: self.full_rank,
            estimate: self.estimate,
            chosen: self.chosen,
            skip: self.skip.map(|s| s.as_str().to_string()),
        }
    }
}

/// How ranks are assigned at the switch.
#[derive(Debug, Clone, PartialEq)]
pub enum RankPlan {
    /// Cuttlefish: per-layer rank from the weight's spectrum at the switch
    /// epoch, using `rule` for CNN weights and `transformer_rule` for
    /// transformer weights, with the stored initial scales `ξ`.
    Auto {
        /// Rule for convolution/plain-linear weights.
        rule: RankRule,
        /// Rule for transformer weights.
        transformer_rule: RankRule,
        /// Per-target ξ (from [`crate::rank::initial_scale`] at epoch 0).
        xi: HashMap<String, f32>,
        /// Skip layers whose factorization would not shrink them.
        skip_no_reduction: bool,
    },
    /// Fixed global ratio ρ (Pufferfish / SI&FD baselines).
    FixedRatio {
        /// The global rank ratio.
        rho: f32,
    },
    /// Explicit per-target ranks (grid searches, LC-learned ranks).
    Explicit {
        /// `name → rank` map; missing names stay full-rank.
        ranks: HashMap<String, usize>,
    },
}

/// Options governing the switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchOptions {
    /// Number of leading targets kept full-rank.
    pub k: usize,
    /// Rank assignment plan.
    pub plan: RankPlan,
    /// Insert an extra BatchNorm between factors (§4.1).
    pub extra_bn: bool,
    /// Frobenius-decay coefficient for the new factors.
    pub frobenius_decay: Option<f32>,
}

fn rank_estimate(rule: RankRule, svals: &[f32], xi: f32) -> f32 {
    match rule {
        RankRule::Vanilla => stable_rank(svals),
        RankRule::Scaled => scaled_stable_rank(svals, xi),
        RankRule::ScaledWithAccumulative { p } => {
            let scaled = scaled_stable_rank(svals, xi);
            let acc = accumulative_rank(svals, p) as f32;
            scaled.max(acc)
        }
    }
}

/// Performs the switch on `net`, returning one decision per target.
///
/// # Errors
///
/// Propagates SVD or network errors; the network is modified target by
/// target, so on error the already-processed prefix remains factorized.
pub fn switch_to_low_rank(net: &mut Network, opts: &SwitchOptions) -> CfResult<Vec<RankDecision>> {
    switch_to_low_rank_with(net, opts, &NullRecorder)
}

/// Like [`switch_to_low_rank`], timing the switch under a `"switch"` span
/// and attributing the SVD/matmul work to a `"switch"`-scoped
/// [`Event::KernelCounterSample`] on the given recorder. The
/// `SwitchTriggered` event itself is emitted by the trainer, which knows
/// the discovered Ê.
///
/// # Errors
///
/// Same as [`switch_to_low_rank`].
pub fn switch_to_low_rank_with(
    net: &mut Network,
    opts: &SwitchOptions,
    recorder: &dyn Recorder,
) -> CfResult<Vec<RankDecision>> {
    let before = crate::kernel_counters_snapshot();
    let decisions = {
        let _span = span("switch", recorder);
        switch_impl(net, opts)?
    };
    let delta = crate::kernel_counters_snapshot().delta_since(&before);
    if !delta.is_zero() {
        recorder.record(Event::KernelCounterSample {
            scope: "switch".to_string(),
            epoch: None,
            counters: delta,
        });
    }
    Ok(decisions)
}

fn switch_impl(net: &mut Network, opts: &SwitchOptions) -> CfResult<Vec<RankDecision>> {
    let targets = net.targets().to_vec();
    let depth = targets.len();
    let mut decisions = Vec::with_capacity(depth);
    for t in &targets {
        let full_rank = t.full_rank();
        let mut decision = RankDecision {
            name: t.name.clone(),
            index: t.index,
            stack: t.stack,
            full_rank,
            estimate: full_rank as f32,
            chosen: None,
            skip: None,
        };
        if t.index <= opts.k {
            decision.skip = Some(SkipReason::WithinK);
            decisions.push(decision);
            continue;
        }
        if t.index == depth {
            decision.skip = Some(SkipReason::LastLayer);
            decisions.push(decision);
            continue;
        }
        if net.is_factored(&t.name)? {
            // Already factorized (e.g. spectral init); leave untouched.
            decision.chosen = net.rank_of(&t.name)?;
            decisions.push(decision);
            continue;
        }

        let w = net.weight_matrix(&t.name)?;
        let (rows, cols) = w.shape();
        let (estimate, skip_no_reduction) = match &opts.plan {
            RankPlan::Auto {
                rule,
                transformer_rule,
                xi,
                skip_no_reduction,
            } => {
                let svd_vals = cuttlefish_tensor::svd::svdvals(&w)?;
                let is_transformer = matches!(
                    t.kind,
                    TargetKind::Linear {
                        transformer: true,
                        ..
                    }
                );
                let rule = if is_transformer {
                    *transformer_rule
                } else {
                    *rule
                };
                let xi_l = xi.get(&t.name).copied().unwrap_or(1.0);
                (rank_estimate(rule, &svd_vals, xi_l), *skip_no_reduction)
            }
            RankPlan::FixedRatio { rho } => ((full_rank as f32 * rho).max(1.0), false),
            RankPlan::Explicit { ranks } => match ranks.get(&t.name) {
                Some(&r) => (r as f32, false),
                None => {
                    decision.skip = Some(SkipReason::WithinK);
                    decisions.push(decision);
                    continue;
                }
            },
        };
        decision.estimate = estimate;
        let r = clamp_rank(estimate, full_rank)?;
        if skip_no_reduction && r * (rows + cols) >= rows * cols {
            decision.skip = Some(SkipReason::NoReduction);
            decisions.push(decision);
            continue;
        }
        let svd = Svd::compute(&w)?;
        let (u, vt) = svd.split_sqrt(r)?;
        net.factorize_target(&t.name, u, vt, opts.extra_bn, opts.frobenius_decay)?;
        decision.chosen = Some(r);
        decisions.push(decision);
    }
    Ok(decisions)
}

/// Projects per-target rank decisions taken on one architecture onto
/// another (e.g. micro ranks → paper-scale shapes for the simulated
/// clock): each stack's mean chosen *ratio* is applied to the full rank of
/// every factorized-stack member on the other side.
pub fn project_ranks(
    decisions: &[RankDecision],
    onto: &[cuttlefish_nn::TargetInfo],
) -> Vec<Option<usize>> {
    // Mean ratio per stack (only over factorized members).
    let mut stack_ratio: HashMap<usize, (f32, usize)> = HashMap::new();
    for d in decisions {
        if let Some(r) = d.chosen {
            let entry = stack_ratio.entry(d.stack).or_insert((0.0, 0));
            entry.0 += r as f32 / d.full_rank.max(1) as f32;
            entry.1 += 1;
        }
    }
    let last_index = onto.len();
    onto.iter()
        .map(|t| {
            if t.index == last_index {
                return None;
            }
            stack_ratio.get(&t.stack).map(|(sum, n)| {
                let ratio = sum / *n as f32;
                ((t.full_rank() as f32 * ratio).round() as usize).clamp(1, t.full_rank())
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::{Act, Mode};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    }

    fn auto_opts(k: usize) -> SwitchOptions {
        SwitchOptions {
            k,
            plan: RankPlan::Auto {
                rule: RankRule::Scaled,
                transformer_rule: RankRule::ScaledWithAccumulative { p: 0.8 },
                xi: HashMap::new(),
                skip_no_reduction: true,
            },
            extra_bn: false,
            frobenius_decay: None,
        }
    }

    #[test]
    fn switch_respects_k_and_last_layer() {
        let mut n = net();
        let decisions = switch_to_low_rank(&mut n, &auto_opts(3)).unwrap();
        for d in &decisions {
            if d.index <= 3 {
                assert_eq!(d.skip, Some(SkipReason::WithinK), "{}", d.name);
            }
        }
        let last = decisions.last().unwrap();
        assert_eq!(last.skip, Some(SkipReason::LastLayer));
        assert_eq!(last.name, "fc");
        // At least one middle layer got factorized.
        assert!(decisions.iter().any(|d| d.chosen.is_some()));
    }

    #[test]
    fn switch_reduces_param_count_and_network_still_runs() {
        let mut n = net();
        let before = n.param_count();
        let _ = switch_to_low_rank(&mut n, &auto_opts(1)).unwrap();
        let after = n.param_count();
        assert!(after < before, "{after} vs {before}");
        let x = Act::image(Matrix::zeros(2, 3 * 64), 3, 8, 8).unwrap();
        let y = n.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().shape(), (2, 4));
    }

    #[test]
    fn fixed_ratio_plan_uses_rho() {
        let mut n = net();
        let opts = SwitchOptions {
            k: 1,
            plan: RankPlan::FixedRatio { rho: 0.25 },
            extra_bn: false,
            frobenius_decay: None,
        };
        let decisions = switch_to_low_rank(&mut n, &opts).unwrap();
        for d in decisions.iter().filter(|d| d.chosen.is_some()) {
            let expect = ((d.full_rank as f32) * 0.25).max(1.0).round() as usize;
            assert_eq!(d.chosen, Some(expect.clamp(1, d.full_rank)), "{}", d.name);
        }
    }

    #[test]
    fn explicit_plan_targets_named_layers_only() {
        let mut n = net();
        let mut ranks = HashMap::new();
        ranks.insert("s3.b0.conv1".to_string(), 2usize);
        let opts = SwitchOptions {
            k: 0,
            plan: RankPlan::Explicit { ranks },
            extra_bn: false,
            frobenius_decay: None,
        };
        let decisions = switch_to_low_rank(&mut n, &opts).unwrap();
        let hit: Vec<&RankDecision> = decisions.iter().filter(|d| d.chosen.is_some()).collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].name, "s3.b0.conv1");
        assert_eq!(hit[0].chosen, Some(2));
    }

    #[test]
    fn skip_no_reduction_keeps_square_layers_dense() {
        // With an explicit huge rank via FixedRatio 1.0 + skip flag, every
        // layer is skipped. Easiest via Auto on a freshly initialized net:
        // random weights have near-full scaled stable rank, so with
        // skip_no_reduction nothing should factorize destructively.
        let mut n = net();
        let mut xi = HashMap::new();
        for t in n.targets().to_vec() {
            let w = n.weight_matrix(&t.name).unwrap();
            xi.insert(t.name.clone(), crate::rank::initial_scale(&w).unwrap());
        }
        let opts = SwitchOptions {
            k: 1,
            plan: RankPlan::Auto {
                rule: RankRule::Scaled,
                transformer_rule: RankRule::Scaled,
                xi,
                skip_no_reduction: true,
            },
            extra_bn: false,
            frobenius_decay: None,
        };
        let decisions = switch_to_low_rank(&mut n, &opts).unwrap();
        // At init, scaled stable rank ≈ full rank ⇒ r(m+n) ≥ mn ⇒ skipped.
        let no_red = decisions
            .iter()
            .filter(|d| d.skip == Some(SkipReason::NoReduction))
            .count();
        assert!(no_red > 0, "{decisions:?}");
    }

    #[test]
    fn switch_preserves_function_approximately() {
        // Factorizing at the (high) init-time scaled stable rank with
        // skip_no_reduction disabled barely changes the function.
        let mut n = net();
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut StdRng::seed_from_u64(5)),
            3,
            8,
            8,
        )
        .unwrap();
        let y_before = n.forward(x.clone(), Mode::Eval).unwrap();
        let opts = SwitchOptions {
            k: 1,
            plan: RankPlan::FixedRatio { rho: 1.0 },
            extra_bn: false,
            frobenius_decay: None,
        };
        let _ = switch_to_low_rank(&mut n, &opts).unwrap();
        let y_after = n.forward(x, Mode::Eval).unwrap();
        let diff = y_before
            .data()
            .sub(y_after.data())
            .unwrap()
            .frobenius_norm();
        assert!(
            diff < 1e-2 * y_before.data().frobenius_norm().max(1.0),
            "{diff}"
        );
    }

    #[test]
    fn project_ranks_maps_by_stack() {
        let decisions = vec![
            RankDecision {
                name: "a".into(),
                index: 2,
                stack: 1,
                full_rank: 8,
                estimate: 4.0,
                chosen: Some(4),
                skip: None,
            },
            RankDecision {
                name: "b".into(),
                index: 3,
                stack: 2,
                full_rank: 16,
                estimate: 4.0,
                chosen: Some(4),
                skip: None,
            },
        ];
        let onto = cuttlefish_perf::arch::resnet18_cifar(10);
        let projected = project_ranks(&decisions, &onto);
        // Stack-1 members get ratio 0.5, stack-2 members ratio 0.25.
        for (t, r) in onto.iter().zip(&projected) {
            match t.stack {
                1 => assert_eq!(*r, Some(t.full_rank() / 2), "{}", t.name),
                2 => assert_eq!(*r, Some((t.full_rank() as f32 * 0.25).round() as usize)),
                0 | 3 | 4 => assert_eq!(*r, None),
                _ => assert_eq!(*r, None, "classifier stays dense"),
            }
        }
    }
}
