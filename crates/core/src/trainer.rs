//! The end-to-end training controller (Algorithm 1 plus the baselines'
//! manual schedules).

use crate::adapter::TaskAdapter;
use crate::config::{CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use crate::factorize::{project_ranks, switch_to_low_rank, RankDecision, RankPlan, SwitchOptions};
use crate::profile::Profiler;
use crate::rank::{initial_scale, stable_rank_of};
use crate::tracker::RankTracker;
use crate::{CfResult, CuttlefishError};
use cuttlefish_nn::optim::{AdamW, Sgd};
use cuttlefish_nn::{Network, TargetInfo};
use cuttlefish_perf::TrainingClock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything a run produces: the discovered hyperparameters, rank
/// trajectories for the figures, quality metrics, parameter counts, and
/// the simulated end-to-end time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Discovered (or imposed) full-rank epochs Ê; `None` for full-rank
    /// runs that never switch.
    pub e_hat: Option<usize>,
    /// Discovered (or imposed) K̂.
    pub k_hat: Option<usize>,
    /// Per-target decisions at the switch (empty if no switch happened).
    pub decisions: Vec<RankDecision>,
    /// Names of tracked layers (column order of `rank_history`).
    pub tracked: Vec<String>,
    /// Per-epoch stable ranks of tracked layers during the full-rank phase.
    pub rank_history: Vec<Vec<f32>>,
    /// Best validation metric over the run (per the paper's convention of
    /// reporting the highest achievable validation accuracy).
    pub best_metric: f32,
    /// Metric at the final epoch.
    pub final_metric: f32,
    /// Per-epoch validation metrics (NaN on epochs without evaluation).
    pub metric_curve: Vec<f32>,
    /// Per-epoch mean training loss.
    pub loss_curve: Vec<f32>,
    /// Trainable parameters before any factorization.
    pub params_full: usize,
    /// Trainable parameters at the end of the run.
    pub params_final: usize,
    /// Simulated end-to-end hours on the configured device/workload.
    pub sim_hours: f64,
}

impl RunResult {
    /// Compression rate `params_final / params_full`.
    pub fn compression(&self) -> f64 {
        self.params_final as f64 / self.params_full.max(1) as f64
    }
}

enum Opt {
    Sgd(Sgd),
    AdamW(AdamW),
}

impl Opt {
    fn new(kind: OptimizerKind) -> Self {
        match kind {
            OptimizerKind::Sgd {
                momentum,
                weight_decay,
            } => Opt::Sgd(Sgd::new(momentum, weight_decay)),
            OptimizerKind::AdamW { weight_decay } => Opt::AdamW(AdamW::new(weight_decay)),
        }
    }

    fn begin_step(&mut self) {
        if let Opt::AdamW(a) = self {
            a.next_step();
        }
    }

    fn step_net(&mut self, net: &mut Network, lr: f32) {
        match self {
            Opt::Sgd(o) => net.step(o, lr),
            Opt::AdamW(o) => net.step(o, lr),
        }
    }
}

fn clip_gradients(net: &mut Network, max_norm: f32) {
    let mut total = 0.0f64;
    net.visit_params(&mut |p| total += p.grad.frobenius_norm_sq());
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        net.visit_params(&mut |p| p.grad.scale_in_place(scale));
    }
}

/// Layers tracked by the stable-rank monitor: everything after the first
/// `k` targets, excluding the classifier (Algorithm 1 tracks `K+1..L-1`).
fn tracked_targets(targets: &[TargetInfo], k: usize) -> Vec<TargetInfo> {
    let depth = targets.len();
    targets
        .iter()
        .filter(|t| t.index > k && t.index < depth)
        .cloned()
        .collect()
}

/// Runs one full training job under the given switch policy.
///
/// `clock_targets` optionally provides paper-scale layer shapes for the
/// simulated clock and the profiling step; when `None`, the network's own
/// targets are used. The micro network's rank decisions are projected onto
/// the clock shapes stack-by-stack, so the simulated "Time (hrs.)" column
/// reflects the paper's hardware workload while training runs at micro
/// scale.
///
/// # Errors
///
/// Propagates network/SVD errors and configuration mistakes.
pub fn run_training(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    tcfg: &TrainerConfig,
    policy: &SwitchPolicy,
    clock_targets: Option<&[TargetInfo]>,
) -> CfResult<RunResult> {
    if tcfg.total_epochs == 0 || tcfg.batch_size == 0 {
        return Err(CuttlefishError::BadConfig {
            detail: "total_epochs and batch_size must be positive".to_string(),
        });
    }
    let mut rng = StdRng::seed_from_u64(tcfg.seed);
    let clock_targets: Vec<TargetInfo> = clock_targets
        .map(|t| t.to_vec())
        .unwrap_or_else(|| net.targets().to_vec());
    let mut clock = TrainingClock::new(tcfg.device.clone());
    let params_full = net.param_count();

    // ---- Policy setup ------------------------------------------------
    let mut e_hat: Option<usize> = None;
    let mut k_hat: Option<usize> = None;
    let mut decisions: Vec<RankDecision> = Vec::new();
    let mut lr_scale = 1.0f32;
    let mut switched = false;

    // For Cuttlefish: profile K̂ up front on the clock shapes, store ξ.
    let mut tracker: Option<RankTracker> = None;
    let mut xi: HashMap<String, f32> = HashMap::new();
    let mut tracked: Vec<TargetInfo> = Vec::new();
    let mut cf_cfg: Option<CuttlefishConfig> = None;

    match policy {
        SwitchPolicy::Cuttlefish(cfg) => {
            let profiler = Profiler {
                device: tcfg.device.clone(),
                batch: tcfg.sim_batch,
                rho_bar: cfg.rho_bar,
                v: cfg.v,
            };
            let outcome = profiler.determine_k(&clock_targets);
            // Translate the clock-shape cut to the micro network by stack.
            let mut micro_k = net
                .targets()
                .iter()
                .filter(|t| t.stack < outcome.cut_stack)
                .count();
            if micro_k + 2 > net.depth() {
                // Profiling found no stack worth factorizing at this scale
                // (can happen when the clock shapes are the micro shapes
                // themselves); fall back to the transformer default K = 1
                // so the controller still has layers to manage. Callers
                // that want faithful K̂ should pass paper-scale
                // `clock_targets`.
                micro_k = 1;
            }
            k_hat = Some(micro_k);
            clock.add_profiling(&clock_targets, tcfg.sim_batch, 11, |t| {
                Some(((t.full_rank() as f32 * cfg.rho_bar).round() as usize).max(1))
            });
            tracked = tracked_targets(net.targets(), micro_k);
            if tracked.is_empty() {
                return Err(CuttlefishError::BadConfig {
                    detail: "no layers left to track after profiling".to_string(),
                });
            }
            for t in &tracked {
                let w = net.weight_matrix(&t.name)?;
                xi.insert(t.name.clone(), initial_scale(&w)?);
            }
            tracker = Some(RankTracker::new(
                tracked.iter().map(|t| t.name.clone()).collect(),
                cfg.epsilon,
                cfg.window,
            ));
            cf_cfg = Some(cfg.clone());
        }
        SwitchPolicy::Manual { k, .. } => {
            k_hat = Some(*k);
            if tcfg.track_ranks {
                tracked = tracked_targets(net.targets(), *k);
                tracker = Some(RankTracker::new(
                    tracked.iter().map(|t| t.name.clone()).collect(),
                    f32::INFINITY,
                    1,
                ));
            }
        }
        SwitchPolicy::SpectralInit {
            rank_ratio,
            frobenius_decay,
        } => {
            // Factorize immediately (E = 0, K = 1).
            let opts = SwitchOptions {
                k: 1,
                plan: RankPlan::FixedRatio { rho: *rank_ratio },
                extra_bn: false,
                frobenius_decay: *frobenius_decay,
            };
            decisions = switch_to_low_rank(net, &opts)?;
            e_hat = Some(0);
            k_hat = Some(1);
            switched = true;
        }
        SwitchPolicy::FullRankOnly => {
            if tcfg.track_ranks {
                tracked = tracked_targets(net.targets(), 1);
                tracker = Some(RankTracker::new(
                    tracked.iter().map(|t| t.name.clone()).collect(),
                    f32::INFINITY,
                    1,
                ));
            }
        }
    }

    // ---- Epoch loop ----------------------------------------------------
    let mut opt = Opt::new(tcfg.optimizer);
    let mut best_metric = if adapter.higher_is_better() {
        f32::NEG_INFINITY
    } else {
        f32::INFINITY
    };
    let mut final_metric = f32::NAN;
    let mut metric_curve = Vec::with_capacity(tcfg.total_epochs);
    let mut loss_curve = Vec::with_capacity(tcfg.total_epochs);

    for epoch in 0..tcfg.total_epochs {
        let lr = tcfg.schedule.lr_at(epoch) * lr_scale;
        let batches = adapter.train_batches(epoch, tcfg.batch_size, &mut rng)?;
        let mut epoch_loss = 0.0f64;
        let nb = batches.len().max(1);
        for batch in batches {
            let logits = net.forward(batch.input, cuttlefish_nn::Mode::Train)?;
            let (loss, grad) = adapter.loss_and_grad(&logits, &batch.target, tcfg.label_smoothing)?;
            epoch_loss += loss as f64;
            net.backward(grad)?;
            net.apply_frobenius_decay();
            if let Some(c) = tcfg.grad_clip {
                clip_gradients(net, c);
            }
            opt.begin_step();
            opt.step_net(net, lr);
            net.zero_grads();
        }
        loss_curve.push((epoch_loss / nb as f64) as f32);

        // Simulated device time for this epoch's workload.
        let projected: Vec<Option<usize>> = if switched {
            project_ranks(&decisions, &clock_targets)
        } else {
            vec![None; clock_targets.len()]
        };
        clock.add_training_iterations(&clock_targets, tcfg.sim_batch, tcfg.sim_iters_per_epoch, |t| {
            projected
                .get(t.index.saturating_sub(1))
                .copied()
                .flatten()
        });

        // Stable-rank tracking during the full-rank phase.
        if !switched {
            if let Some(tr) = tracker.as_mut() {
                let mut ranks = Vec::with_capacity(tracked.len());
                for t in &tracked {
                    let w = net.weight_matrix(&t.name)?;
                    ranks.push(stable_rank_of(&w)?);
                }
                tr.record(ranks);
                clock.add_rank_estimation(&clock_targets);
            }
        }

        // Cuttlefish switch condition.
        if !switched {
            if let (Some(cfg), Some(tr)) = (cf_cfg.as_ref(), tracker.as_ref()) {
                let max_full =
                    ((tcfg.total_epochs as f32) * cfg.max_full_rank_fraction).round() as usize;
                if tr.converged() || epoch + 1 >= max_full.max(cfg.window + 1) {
                    let opts = SwitchOptions {
                        k: k_hat.unwrap_or(1),
                        plan: RankPlan::Auto {
                            rule: cfg.rank_rule,
                            transformer_rule: cfg.transformer_rank_rule,
                            xi: xi.clone(),
                            skip_no_reduction: true,
                        },
                        extra_bn: cfg.extra_bn,
                        frobenius_decay: cfg.frobenius_decay,
                    };
                    decisions = switch_to_low_rank(net, &opts)?;
                    e_hat = Some(epoch + 1);
                    lr_scale = cfg.post_switch_lr_scale;
                    switched = true;
                }
            } else if let SwitchPolicy::Manual {
                full_rank_epochs,
                k,
                rank_ratio,
                extra_bn,
                frobenius_decay,
            } = policy
            {
                if epoch + 1 >= *full_rank_epochs {
                    let opts = SwitchOptions {
                        k: *k,
                        plan: RankPlan::FixedRatio { rho: *rank_ratio },
                        extra_bn: *extra_bn,
                        frobenius_decay: *frobenius_decay,
                    };
                    decisions = switch_to_low_rank(net, &opts)?;
                    e_hat = Some(epoch + 1);
                    switched = true;
                }
            }
        }

        // Evaluation.
        if (epoch + 1) % tcfg.eval_every == 0 || epoch + 1 == tcfg.total_epochs {
            let m = adapter.evaluate(net)?;
            metric_curve.push(m);
            final_metric = m;
            if adapter.higher_is_better() {
                best_metric = best_metric.max(m);
            } else {
                best_metric = best_metric.min(m);
            }
        } else {
            metric_curve.push(f32::NAN);
        }
    }

    let (tracked_names, rank_history) = match tracker {
        Some(tr) => (tr.names().to_vec(), tr.history().to_vec()),
        None => (Vec::new(), Vec::new()),
    };
    Ok(RunResult {
        e_hat,
        k_hat,
        decisions,
        tracked: tracked_names,
        rank_history,
        best_metric,
        final_metric,
        metric_curve,
        loss_curve,
        params_full,
        params_final: net.param_count(),
        sim_hours: clock.hours(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::VisionAdapter;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};

    fn quick_cfg(epochs: usize) -> TrainerConfig {
        let mut c = TrainerConfig::cnn_default(epochs, 7);
        c.batch_size = 32;
        c.schedule = cuttlefish_nn::schedule::LrSchedule::WarmupMultiStep {
            base_lr: 0.02,
            peak_lr: 0.08,
            warmup_epochs: 2,
            milestones: vec![epochs / 2, epochs * 3 / 4],
            gamma: 0.1,
        };
        c
    }

    fn tiny_setup() -> (Network, VisionAdapter) {
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let task = VisionTask::generate(&VisionSpec::tiny(), 0);
        (net, VisionAdapter::new(task))
    }

    #[test]
    fn full_rank_run_learns() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(6),
            &SwitchPolicy::FullRankOnly,
            None,
        )
        .unwrap();
        assert!(res.best_metric > 0.5, "accuracy {}", res.best_metric);
        assert_eq!(res.e_hat, None);
        assert_eq!(res.params_full, res.params_final);
        assert!(res.sim_hours > 0.0);
        assert_eq!(res.loss_curve.len(), 6);
        // Loss decreased.
        assert!(res.loss_curve.last().unwrap() < res.loss_curve.first().unwrap());
    }

    #[test]
    fn cuttlefish_run_switches_and_compresses() {
        let (mut net, mut ad) = tiny_setup();
        let mut cfg = CuttlefishConfig::default();
        cfg.epsilon = 0.35; // micro-scale ranks are noisier
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(10),
            &SwitchPolicy::Cuttlefish(cfg),
            None,
        )
        .unwrap();
        let e = res.e_hat.expect("must switch");
        assert!(e >= 2 && e <= 10, "E = {e}");
        assert!(res.params_final < res.params_full);
        assert!(res.k_hat.is_some());
        assert!(!res.decisions.is_empty());
        assert!(!res.rank_history.is_empty());
        assert!(res.best_metric > 0.45, "accuracy {}", res.best_metric);
    }

    #[test]
    fn manual_policy_switches_at_given_epoch() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(6),
            &SwitchPolicy::Manual {
                full_rank_epochs: 3,
                k: 1,
                rank_ratio: 0.25,
                extra_bn: false,
                frobenius_decay: None,
            },
            None,
        )
        .unwrap();
        assert_eq!(res.e_hat, Some(3));
        assert!(res.params_final < res.params_full / 2);
        assert!(res.compression() < 0.5);
    }

    #[test]
    fn spectral_init_factorizes_at_epoch_zero() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(4),
            &SwitchPolicy::SpectralInit {
                rank_ratio: 0.25,
                frobenius_decay: Some(1e-4),
            },
            None,
        )
        .unwrap();
        assert_eq!(res.e_hat, Some(0));
        assert!(res.params_final < res.params_full);
    }

    #[test]
    fn low_rank_sim_time_is_shorter_than_full() {
        let (mut net_a, mut ad_a) = tiny_setup();
        let full = run_training(
            &mut net_a,
            &mut ad_a,
            &quick_cfg(6),
            &SwitchPolicy::FullRankOnly,
            Some(&cuttlefish_perf::arch::resnet18_cifar(10)),
        )
        .unwrap();
        let (mut net_b, mut ad_b) = tiny_setup();
        let manual = run_training(
            &mut net_b,
            &mut ad_b,
            &quick_cfg(6),
            &SwitchPolicy::Manual {
                full_rank_epochs: 2,
                k: 5,
                rank_ratio: 0.25,
                extra_bn: false,
                frobenius_decay: None,
            },
            Some(&cuttlefish_perf::arch::resnet18_cifar(10)),
        )
        .unwrap();
        assert!(
            manual.sim_hours < full.sim_hours,
            "manual {} vs full {}",
            manual.sim_hours,
            full.sim_hours
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let (mut net, mut ad) = tiny_setup();
        let mut cfg = quick_cfg(0);
        cfg.total_epochs = 0;
        assert!(run_training(&mut net, &mut ad, &cfg, &SwitchPolicy::FullRankOnly, None).is_err());
    }
}
