//! The end-to-end training controller (Algorithm 1 plus the baselines'
//! manual schedules).

use crate::adapter::TaskAdapter;
use crate::config::{CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use crate::factorize::{
    project_ranks, switch_to_low_rank_with, RankDecision, RankPlan, SwitchOptions,
};
use crate::profile::Profiler;
use crate::rank::{initial_scale, stable_rank_of};
use crate::tracker::RankTracker;
use crate::{CfResult, CuttlefishError};
use cuttlefish_nn::optim::{AdamW, Sgd};
use cuttlefish_nn::{Network, TargetInfo};
use cuttlefish_perf::TrainingClock;
use cuttlefish_telemetry::{
    fnv1a_hash, git_describe, span, Event, LayerVerdict, NullRecorder, RankEntry, Recorder,
    RunManifest, SCHEMA_VERSION,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Everything a run produces: the discovered hyperparameters, rank
/// trajectories for the figures, quality metrics, parameter counts, and
/// the simulated end-to-end time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Discovered (or imposed) full-rank epochs Ê; `None` for full-rank
    /// runs that never switch.
    pub e_hat: Option<usize>,
    /// Discovered (or imposed) K̂.
    pub k_hat: Option<usize>,
    /// Per-target decisions at the switch (empty if no switch happened).
    pub decisions: Vec<RankDecision>,
    /// Names of tracked layers (column order of `rank_history`).
    pub tracked: Vec<String>,
    /// Per-epoch stable ranks of tracked layers during the full-rank phase.
    pub rank_history: Vec<Vec<f32>>,
    /// Best validation metric over the run (per the paper's convention of
    /// reporting the highest achievable validation accuracy).
    pub best_metric: f32,
    /// Metric at the final epoch.
    pub final_metric: f32,
    /// Per-epoch validation metrics (NaN on epochs without evaluation).
    pub metric_curve: Vec<f32>,
    /// Per-epoch mean training loss.
    pub loss_curve: Vec<f32>,
    /// Trainable parameters before any factorization.
    pub params_full: usize,
    /// Trainable parameters at the end of the run.
    pub params_final: usize,
    /// Simulated end-to-end hours on the configured device/workload.
    pub sim_hours: f64,
}

impl RunResult {
    /// Compression rate `params_final / params_full`.
    ///
    /// A degenerate run with `params_full == 0` (an empty network, or a
    /// hand-built result) reports `1.0` — no parameters means nothing was
    /// compressed, and the quotient would otherwise be ill-defined.
    pub fn compression(&self) -> f64 {
        if self.params_full == 0 {
            return 1.0;
        }
        self.params_final as f64 / self.params_full as f64
    }
}

enum Opt {
    Sgd(Sgd),
    AdamW(AdamW),
}

impl Opt {
    fn new(kind: OptimizerKind) -> Self {
        match kind {
            OptimizerKind::Sgd {
                momentum,
                weight_decay,
            } => Opt::Sgd(Sgd::new(momentum, weight_decay)),
            OptimizerKind::AdamW { weight_decay } => Opt::AdamW(AdamW::new(weight_decay)),
        }
    }

    fn begin_step(&mut self) {
        if let Opt::AdamW(a) = self {
            a.next_step();
        }
    }

    fn step_net(&mut self, net: &mut Network, lr: f32) {
        match self {
            Opt::Sgd(o) => net.step(o, lr),
            Opt::AdamW(o) => net.step(o, lr),
        }
    }
}

/// A step-driven training engine: the per-batch half of the trainer,
/// factored out so external drivers (the `cuttlefish-dist` coordinator,
/// custom loops) can own the schedule while reusing the exact
/// forward/backward/update sequence of [`run_training_with`].
///
/// One optimizer step is split into two halves:
///
/// 1. [`StepEngine::forward_backward`] — forward pass, loss, backward
///    pass, Frobenius-decay gradients. Gradients are left **in** the
///    network, where a distributed driver can extract, average, and
///    reload them between the halves.
/// 2. [`StepEngine::apply`] — gradient clipping, optimizer time step,
///    parameter update, gradient reset.
///
/// Identical replicas that apply identical gradients through the same
/// `StepEngine` sequence stay bit-identical: all optimizer state lives in
/// the parameters' slots and is advanced deterministically by `apply`.
pub struct StepEngine {
    opt: Opt,
    grad_clip: Option<f32>,
    label_smoothing: f32,
}

impl StepEngine {
    /// Creates an engine with the trainer's optimizer/clip/smoothing
    /// settings.
    pub fn new(optimizer: OptimizerKind, grad_clip: Option<f32>, label_smoothing: f32) -> Self {
        StepEngine {
            opt: Opt::new(optimizer),
            grad_clip,
            label_smoothing,
        }
    }

    /// Runs the forward and backward halves of one batch, accumulating
    /// gradients (including Frobenius decay) into the network, and returns
    /// the batch loss. Does **not** update parameters.
    ///
    /// # Errors
    ///
    /// Propagates network forward/backward and loss errors.
    pub fn forward_backward(
        &self,
        net: &mut Network,
        adapter: &dyn TaskAdapter,
        batch: crate::adapter::TaskBatch,
    ) -> CfResult<f32> {
        let logits = net.forward(batch.input, cuttlefish_nn::Mode::Train)?;
        let (loss, grad) = adapter.loss_and_grad(&logits, &batch.target, self.label_smoothing)?;
        net.backward(grad)?;
        net.apply_frobenius_decay()?;
        Ok(loss)
    }

    /// Applies the gradients currently stored in the network: clips the
    /// global norm (when configured), advances the optimizer's time step,
    /// updates every parameter at learning rate `lr`, and zeroes the
    /// gradients. Returns the pre-clip gradient norm when clipping fired.
    pub fn apply(&mut self, net: &mut Network, lr: f32) -> Option<f32> {
        let clipped = self.grad_clip.and_then(|c| clip_gradients(net, c));
        self.opt.begin_step();
        self.opt.step_net(net, lr);
        net.zero_grads();
        clipped
    }

    /// The configured clip threshold (for telemetry alongside
    /// [`StepEngine::apply`]'s returned norm).
    pub fn grad_clip(&self) -> Option<f32> {
        self.grad_clip
    }

    /// Fast-forwards the optimizer's internal time step (the AdamW
    /// bias-correction counter) without touching any parameter, as if
    /// [`StepEngine::apply`] had run `steps` times. A replica that joins
    /// a run late and copies a peer's parameters and slots must also
    /// match the peer's optimizer time, or its next AdamW update diverges
    /// bit-wise; SGD has no time state and this is a no-op for it.
    pub fn sync_time(&mut self, steps: usize) {
        for _ in 0..steps {
            self.opt.begin_step();
        }
    }
}

/// Clips the global gradient norm to `max_norm`, returning the pre-clip
/// norm when clipping actually fired. A non-positive `max_norm` disables
/// clipping entirely (previously it scaled every gradient by a
/// non-positive factor, zeroing or flipping the step).
fn clip_gradients(net: &mut Network, max_norm: f32) -> Option<f32> {
    if max_norm <= 0.0 {
        return None;
    }
    let mut total = 0.0f64;
    net.visit_params(&mut |p| total += p.grad.frobenius_norm_sq());
    let norm = total.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        net.visit_params(&mut |p| p.grad.scale_in_place(scale));
        return Some(norm);
    }
    None
}

/// Layers tracked by the stable-rank monitor: everything after the first
/// `k` targets, excluding the classifier (Algorithm 1 tracks `K+1..L-1`).
///
/// Target *indices* are 1-based depth positions, so for a network of
/// depth `L` the tracked set is exactly the targets with indices in
/// `k+1..L` (half-open: the classifier at index `L` is excluded),
/// regardless of the order the targets appear in the slice. `k ≥ L - 1`
/// leaves nothing to track and returns an empty vector.
pub fn tracked_targets(targets: &[TargetInfo], k: usize) -> Vec<TargetInfo> {
    let depth = targets.len();
    targets
        .iter()
        .filter(|t| t.index > k && t.index < depth)
        .cloned()
        .collect()
}

/// Runs one full training job under the given switch policy.
///
/// `clock_targets` optionally provides paper-scale layer shapes for the
/// simulated clock and the profiling step; when `None`, the network's own
/// targets are used. The micro network's rank decisions are projected onto
/// the clock shapes stack-by-stack, so the simulated "Time (hrs.)" column
/// reflects the paper's hardware workload while training runs at micro
/// scale.
///
/// # Errors
///
/// Propagates network/SVD errors and configuration mistakes.
pub fn run_training(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    tcfg: &TrainerConfig,
    policy: &SwitchPolicy,
    clock_targets: Option<&[TargetInfo]>,
) -> CfResult<RunResult> {
    run_training_with(net, adapter, tcfg, policy, clock_targets, &NullRecorder)
}

/// Short policy name used in telemetry manifests.
fn policy_name(policy: &SwitchPolicy) -> &'static str {
    match policy {
        SwitchPolicy::Cuttlefish(_) => "cuttlefish",
        SwitchPolicy::FullRankOnly => "full_rank",
        SwitchPolicy::Manual { .. } => "manual",
        SwitchPolicy::SpectralInit { .. } => "spectral_init",
    }
}

/// Like [`run_training`], emitting structured telemetry to `recorder`.
///
/// Every lifecycle moment of Algorithm 1 becomes a typed event: epoch
/// start/end (with loss, metric, and wall time), per-layer stable-rank
/// samples and tracker verdicts during the full-rank phase, the profiling
/// measurements behind K̂, the switch with its per-target rank decisions,
/// gradient-clip firings, per-epoch kernel-counter deltas (when the
/// `telemetry` feature of `cuttlefish-tensor` is on), and a terminal
/// [`RunManifest`]. With [`NullRecorder`] the instrumentation reduces to
/// one virtual call per event.
///
/// # Errors
///
/// Same as [`run_training`].
pub fn run_training_with(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    tcfg: &TrainerConfig,
    policy: &SwitchPolicy,
    clock_targets: Option<&[TargetInfo]>,
    recorder: &dyn Recorder,
) -> CfResult<RunResult> {
    // Ahead-of-time checks: reject ill-formed configs and models before a
    // single kernel runs. verify() symbolically re-plays the layer graph
    // and cross-checks every factorization target against its stored
    // weight, so a bad rank or corrupted shape fails here with a named
    // layer rather than deep inside epoch 0.
    tcfg.validate()?;
    policy.validate()?;
    net.verify()?;
    cuttlefish_tensor::checked::reset();
    let mut rng = StdRng::seed_from_u64(tcfg.seed);
    let clock_targets: Vec<TargetInfo> = clock_targets
        .map(|t| t.to_vec())
        .unwrap_or_else(|| net.targets().to_vec());
    let mut clock = TrainingClock::new(tcfg.device.clone());
    let params_full = net.param_count();

    // ---- Policy setup ------------------------------------------------
    let mut e_hat: Option<usize> = None;
    let mut k_hat: Option<usize> = None;
    let mut decisions: Vec<RankDecision> = Vec::new();
    let mut lr_scale = 1.0f32;
    let mut switched = false;

    // For Cuttlefish: profile K̂ up front on the clock shapes, store ξ.
    let mut tracker: Option<RankTracker> = None;
    let mut xi: HashMap<String, f32> = HashMap::new();
    let mut tracked: Vec<TargetInfo> = Vec::new();
    let mut cf_cfg: Option<CuttlefishConfig> = None;

    match policy {
        SwitchPolicy::Cuttlefish(cfg) => {
            let profiler = Profiler {
                device: tcfg.device.clone(),
                batch: tcfg.sim_batch,
                rho_bar: cfg.rho_bar,
                v: cfg.v,
            };
            let outcome = profiler.determine_k_with(&clock_targets, recorder);
            // Translate the clock-shape cut to the micro network by stack.
            let mut micro_k = net
                .targets()
                .iter()
                .filter(|t| t.stack < outcome.cut_stack)
                .count();
            if micro_k + 2 > net.depth() {
                // Profiling found no stack worth factorizing at this scale
                // (can happen when the clock shapes are the micro shapes
                // themselves); fall back to the transformer default K = 1
                // so the controller still has layers to manage. Callers
                // that want faithful K̂ should pass paper-scale
                // `clock_targets`.
                micro_k = 1;
            }
            k_hat = Some(micro_k);
            clock.add_profiling(&clock_targets, tcfg.sim_batch, 11, |t| {
                Some(((t.full_rank() as f32 * cfg.rho_bar).round() as usize).max(1))
            });
            tracked = tracked_targets(net.targets(), micro_k);
            if tracked.is_empty() {
                return Err(CuttlefishError::BadConfig {
                    detail: "no layers left to track after profiling".to_string(),
                });
            }
            for t in &tracked {
                let w = net.weight_matrix(&t.name)?;
                xi.insert(t.name.clone(), initial_scale(&w)?);
            }
            tracker = Some(RankTracker::new(
                tracked.iter().map(|t| t.name.clone()).collect(),
                cfg.epsilon,
                cfg.window,
            ));
            cf_cfg = Some(cfg.clone());
        }
        SwitchPolicy::Manual { k, .. } => {
            k_hat = Some(*k);
            if tcfg.track_ranks {
                tracked = tracked_targets(net.targets(), *k);
                tracker = Some(RankTracker::new(
                    tracked.iter().map(|t| t.name.clone()).collect(),
                    f32::INFINITY,
                    1,
                ));
            }
        }
        SwitchPolicy::SpectralInit {
            rank_ratio,
            frobenius_decay,
        } => {
            // Factorize immediately (E = 0, K = 1).
            let opts = SwitchOptions {
                k: 1,
                plan: RankPlan::FixedRatio { rho: *rank_ratio },
                extra_bn: false,
                frobenius_decay: *frobenius_decay,
            };
            decisions = switch_to_low_rank_with(net, &opts, recorder)?;
            e_hat = Some(0);
            k_hat = Some(1);
            switched = true;
            recorder.record(Event::SwitchTriggered {
                e_hat: 0,
                k_hat: 1,
                decisions: decisions.iter().map(|d| d.to_event()).collect(),
            });
        }
        SwitchPolicy::FullRankOnly => {
            if tcfg.track_ranks {
                tracked = tracked_targets(net.targets(), 1);
                tracker = Some(RankTracker::new(
                    tracked.iter().map(|t| t.name.clone()).collect(),
                    f32::INFINITY,
                    1,
                ));
            }
        }
    }

    // ---- Epoch loop ----------------------------------------------------
    let mut engine = StepEngine::new(tcfg.optimizer, tcfg.grad_clip, tcfg.label_smoothing);
    let mut best_metric = if adapter.higher_is_better() {
        f32::NEG_INFINITY
    } else {
        f32::INFINITY
    };
    let mut final_metric = f32::NAN;
    let mut metric_curve = Vec::with_capacity(tcfg.total_epochs);
    let mut loss_curve = Vec::with_capacity(tcfg.total_epochs);

    for epoch in 0..tcfg.total_epochs {
        let lr = tcfg.schedule.lr_at(epoch) * lr_scale;
        recorder.record(Event::EpochStarted { epoch, lr });
        let epoch_start = Instant::now();
        let counters_at_epoch_start = crate::kernel_counters_snapshot();
        let batches = adapter.train_batches(epoch, tcfg.batch_size, &mut rng)?;
        let mut epoch_loss = 0.0f64;
        let nb = batches.len().max(1);
        for batch in batches {
            let loss = engine.forward_backward(net, adapter, batch)?;
            epoch_loss += loss as f64;
            if let Some(norm) = engine.apply(net, lr) {
                recorder.record(Event::GradClipped {
                    epoch,
                    norm,
                    max_norm: engine.grad_clip().unwrap_or(f32::NAN),
                });
            }
        }
        let mean_loss = (epoch_loss / nb as f64) as f32;
        loss_curve.push(mean_loss);

        // Simulated device time for this epoch's workload.
        let projected: Vec<Option<usize>> = if switched {
            project_ranks(&decisions, &clock_targets)
        } else {
            vec![None; clock_targets.len()]
        };
        clock.add_training_iterations(
            &clock_targets,
            tcfg.sim_batch,
            tcfg.sim_iters_per_epoch,
            |t| projected.get(t.index.saturating_sub(1)).copied().flatten(),
        );

        // Stable-rank tracking during the full-rank phase.
        if !switched {
            if let Some(tr) = tracker.as_mut() {
                let _span = span("rank_estimation", recorder);
                let mut ranks = Vec::with_capacity(tracked.len());
                for t in &tracked {
                    let w = net.weight_matrix(&t.name)?;
                    let rho = stable_rank_of(&w)?;
                    let xi_l = xi.get(&t.name).copied().unwrap_or(1.0);
                    recorder.record(Event::StableRankSampled {
                        epoch,
                        layer: t.name.clone(),
                        rho,
                        scaled_rho: xi_l * rho,
                    });
                    ranks.push(rho);
                }
                tr.record(ranks);
                clock.add_rank_estimation(&clock_targets);
                recorder.record(Event::TrackerVerdict {
                    epoch,
                    epsilon: tr.epsilon(),
                    converged: tr.converged(),
                    layers: tr
                        .verdicts()
                        .into_iter()
                        .map(|(layer, derivative, stabilized)| LayerVerdict {
                            layer,
                            derivative,
                            stabilized,
                        })
                        .collect(),
                });
            }
        }

        // Cuttlefish switch condition. The switch's own kernel work is
        // sampled under a "switch" scope by `switch_to_low_rank_with`, so
        // its delta is excluded from this epoch's "epoch"-scoped sample
        // below to keep the two attributions disjoint.
        let counters_before_switch = crate::kernel_counters_snapshot();
        if !switched {
            if let (Some(cfg), Some(tr)) = (cf_cfg.as_ref(), tracker.as_ref()) {
                let max_full =
                    ((tcfg.total_epochs as f32) * cfg.max_full_rank_fraction).round() as usize;
                if tr.converged() || epoch + 1 >= max_full.max(cfg.window + 1) {
                    let opts = SwitchOptions {
                        k: k_hat.unwrap_or(1),
                        plan: RankPlan::Auto {
                            rule: cfg.rank_rule,
                            transformer_rule: cfg.transformer_rank_rule,
                            xi: xi.clone(),
                            skip_no_reduction: true,
                        },
                        extra_bn: cfg.extra_bn,
                        frobenius_decay: cfg.frobenius_decay,
                    };
                    decisions = switch_to_low_rank_with(net, &opts, recorder)?;
                    e_hat = Some(epoch + 1);
                    lr_scale = cfg.post_switch_lr_scale;
                    switched = true;
                    recorder.record(Event::SwitchTriggered {
                        e_hat: epoch + 1,
                        k_hat: k_hat.unwrap_or(1),
                        decisions: decisions.iter().map(|d| d.to_event()).collect(),
                    });
                }
            } else if let SwitchPolicy::Manual {
                full_rank_epochs,
                k,
                rank_ratio,
                extra_bn,
                frobenius_decay,
            } = policy
            {
                if epoch + 1 >= *full_rank_epochs {
                    let opts = SwitchOptions {
                        k: *k,
                        plan: RankPlan::FixedRatio { rho: *rank_ratio },
                        extra_bn: *extra_bn,
                        frobenius_decay: *frobenius_decay,
                    };
                    decisions = switch_to_low_rank_with(net, &opts, recorder)?;
                    e_hat = Some(epoch + 1);
                    switched = true;
                    recorder.record(Event::SwitchTriggered {
                        e_hat: epoch + 1,
                        k_hat: *k,
                        decisions: decisions.iter().map(|d| d.to_event()).collect(),
                    });
                }
            }
        }
        let switch_delta = crate::kernel_counters_snapshot().delta_since(&counters_before_switch);

        // Evaluation.
        let mut epoch_metric = None;
        if (epoch + 1) % tcfg.eval_every == 0 || epoch + 1 == tcfg.total_epochs {
            let m = adapter.evaluate(net)?;
            metric_curve.push(m);
            final_metric = m;
            epoch_metric = Some(m);
            if adapter.higher_is_better() {
                best_metric = best_metric.max(m);
            } else {
                best_metric = best_metric.min(m);
            }
        } else {
            metric_curve.push(f32::NAN);
        }

        let epoch_delta = crate::kernel_counters_snapshot()
            .delta_since(&counters_at_epoch_start)
            .delta_since(&switch_delta);
        if !epoch_delta.is_zero() {
            recorder.record(Event::KernelCounterSample {
                scope: "epoch".to_string(),
                epoch: Some(epoch),
                counters: epoch_delta,
            });
        }
        recorder.record(Event::EpochCompleted {
            epoch,
            loss: mean_loss,
            metric: epoch_metric,
            lr,
            wall_ms: epoch_start.elapsed().as_secs_f64() * 1e3,
        });
    }

    let (tracked_names, rank_history) = match tracker {
        Some(tr) => (tr.names().to_vec(), tr.history().to_vec()),
        None => (Vec::new(), Vec::new()),
    };

    // Numeric-sanitizer report (a no-op unless the `checked` feature of
    // `cuttlefish-tensor` is enabled): localize the first NaN/Inf to the
    // kernel and layer that produced it.
    if let Some(p) = cuttlefish_tensor::checked::first_poison() {
        recorder.record(Event::NumericPoison {
            op: p.op.to_string(),
            label: p.label.clone(),
            index: p.index,
            value: format!("{}", p.value),
        });
    }

    // Terminal manifest: identify + summarize the run, then flush so a
    // JSONL sink is complete on disk before the caller inspects it.
    let mut event_counts = recorder.event_counts();
    match event_counts.binary_search_by(|(k, _)| k.as_str().cmp("manifest")) {
        Ok(i) => event_counts[i].1 += 1,
        Err(i) => event_counts.insert(i, ("manifest".to_string(), 1)),
    }
    recorder.record(Event::Manifest(RunManifest {
        schema_version: SCHEMA_VERSION,
        config_hash: fnv1a_hash(&format!("{tcfg:?}|{policy:?}")),
        seed: tcfg.seed,
        policy: policy_name(policy).to_string(),
        e_hat,
        k_hat,
        ranks: decisions
            .iter()
            .filter_map(|d| {
                d.chosen.map(|rank| RankEntry {
                    layer: d.name.clone(),
                    rank,
                    full_rank: d.full_rank,
                })
            })
            .collect(),
        params_full,
        params_final: net.param_count(),
        git_describe: git_describe(),
        event_counts,
        sim_hours: clock.hours(),
    }));
    recorder.flush();

    Ok(RunResult {
        e_hat,
        k_hat,
        decisions,
        tracked: tracked_names,
        rank_history,
        best_metric,
        final_metric,
        metric_curve,
        loss_curve,
        params_full,
        params_final: net.param_count(),
        sim_hours: clock.hours(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::VisionAdapter;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};

    fn quick_cfg(epochs: usize) -> TrainerConfig {
        let mut c = TrainerConfig::cnn_default(epochs, 7);
        c.batch_size = 32;
        c.schedule = cuttlefish_nn::schedule::LrSchedule::WarmupMultiStep {
            base_lr: 0.02,
            peak_lr: 0.08,
            warmup_epochs: 2,
            milestones: vec![epochs / 2, epochs * 3 / 4],
            gamma: 0.1,
        };
        c
    }

    fn tiny_setup() -> (Network, VisionAdapter) {
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let task = VisionTask::generate(&VisionSpec::tiny(), 0);
        (net, VisionAdapter::new(task))
    }

    #[test]
    fn full_rank_run_learns() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(6),
            &SwitchPolicy::FullRankOnly,
            None,
        )
        .unwrap();
        assert!(res.best_metric > 0.5, "accuracy {}", res.best_metric);
        assert_eq!(res.e_hat, None);
        assert_eq!(res.params_full, res.params_final);
        assert!(res.sim_hours > 0.0);
        assert_eq!(res.loss_curve.len(), 6);
        // Loss decreased.
        assert!(res.loss_curve.last().unwrap() < res.loss_curve.first().unwrap());
    }

    #[test]
    fn cuttlefish_run_switches_and_compresses() {
        let (mut net, mut ad) = tiny_setup();
        let cfg = CuttlefishConfig {
            epsilon: 0.35, // micro-scale ranks are noisier
            ..CuttlefishConfig::default()
        };
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(10),
            &SwitchPolicy::Cuttlefish(cfg),
            None,
        )
        .unwrap();
        let e = res.e_hat.expect("must switch");
        assert!((2..=10).contains(&e), "E = {e}");
        assert!(res.params_final < res.params_full);
        assert!(res.k_hat.is_some());
        assert!(!res.decisions.is_empty());
        assert!(!res.rank_history.is_empty());
        assert!(res.best_metric > 0.45, "accuracy {}", res.best_metric);
    }

    #[test]
    fn manual_policy_switches_at_given_epoch() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(6),
            &SwitchPolicy::Manual {
                full_rank_epochs: 3,
                k: 1,
                rank_ratio: 0.25,
                extra_bn: false,
                frobenius_decay: None,
            },
            None,
        )
        .unwrap();
        assert_eq!(res.e_hat, Some(3));
        assert!(res.params_final < res.params_full / 2);
        assert!(res.compression() < 0.5);
    }

    #[test]
    fn spectral_init_factorizes_at_epoch_zero() {
        let (mut net, mut ad) = tiny_setup();
        let res = run_training(
            &mut net,
            &mut ad,
            &quick_cfg(4),
            &SwitchPolicy::SpectralInit {
                rank_ratio: 0.25,
                frobenius_decay: Some(1e-4),
            },
            None,
        )
        .unwrap();
        assert_eq!(res.e_hat, Some(0));
        assert!(res.params_final < res.params_full);
    }

    #[test]
    fn low_rank_sim_time_is_shorter_than_full() {
        let (mut net_a, mut ad_a) = tiny_setup();
        let full = run_training(
            &mut net_a,
            &mut ad_a,
            &quick_cfg(6),
            &SwitchPolicy::FullRankOnly,
            Some(&cuttlefish_perf::arch::resnet18_cifar(10)),
        )
        .unwrap();
        let (mut net_b, mut ad_b) = tiny_setup();
        let manual = run_training(
            &mut net_b,
            &mut ad_b,
            &quick_cfg(6),
            &SwitchPolicy::Manual {
                full_rank_epochs: 2,
                k: 5,
                rank_ratio: 0.25,
                extra_bn: false,
                frobenius_decay: None,
            },
            Some(&cuttlefish_perf::arch::resnet18_cifar(10)),
        )
        .unwrap();
        assert!(
            manual.sim_hours < full.sim_hours,
            "manual {} vs full {}",
            manual.sim_hours,
            full.sim_hours
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let (mut net, mut ad) = tiny_setup();
        let mut cfg = quick_cfg(0);
        cfg.total_epochs = 0;
        assert!(run_training(&mut net, &mut ad, &cfg, &SwitchPolicy::FullRankOnly, None).is_err());
    }

    #[test]
    fn compression_of_empty_model_is_one() {
        let res = RunResult {
            e_hat: None,
            k_hat: None,
            decisions: Vec::new(),
            tracked: Vec::new(),
            rank_history: Vec::new(),
            best_metric: 0.0,
            final_metric: 0.0,
            metric_curve: Vec::new(),
            loss_curve: Vec::new(),
            params_full: 0,
            params_final: 0,
            sim_hours: 0.0,
        };
        assert_eq!(res.compression(), 1.0);
    }

    #[test]
    fn clip_gradients_disabled_by_non_positive_max_norm() {
        let (mut net, mut ad) = tiny_setup();
        // Populate gradients with one real backward pass.
        let mut rng = StdRng::seed_from_u64(1);
        let batch = ad
            .train_batches(0, 8, &mut rng)
            .unwrap()
            .into_iter()
            .next()
            .unwrap();
        let logits = net
            .forward(batch.input, cuttlefish_nn::Mode::Train)
            .unwrap();
        let (_, grad) = ad.loss_and_grad(&logits, &batch.target, 0.0).unwrap();
        net.backward(grad).unwrap();

        let grad_norm = |net: &mut Network| {
            let mut total = 0.0f64;
            net.visit_params(&mut |p| total += p.grad.frobenius_norm_sq());
            total.sqrt() as f32
        };
        let before = grad_norm(&mut net);
        assert!(before > 0.0, "backward produced no gradient");

        // Non-positive limits are treated as "clipping off": gradients are
        // untouched (the old behavior scaled them by a non-positive
        // factor).
        assert_eq!(clip_gradients(&mut net, 0.0), None);
        assert_eq!(clip_gradients(&mut net, -1.0), None);
        assert_eq!(grad_norm(&mut net), before);

        // A limit above the norm leaves gradients alone and reports no
        // clip; a limit below actually clips and reports the pre-clip norm.
        assert_eq!(clip_gradients(&mut net, before * 2.0), None);
        let limit = before / 2.0;
        assert_eq!(clip_gradients(&mut net, limit), Some(before));
        let after = grad_norm(&mut net);
        assert!((after - limit).abs() < 1e-3 * limit, "{after} vs {limit}");
    }

    #[test]
    fn telemetry_records_one_switch_matching_result() {
        use cuttlefish_telemetry::MemoryRecorder;
        let (mut net, mut ad) = tiny_setup();
        let cfg = CuttlefishConfig {
            epsilon: 0.35,
            ..CuttlefishConfig::default()
        };
        let rec = MemoryRecorder::new();
        let res = run_training_with(
            &mut net,
            &mut ad,
            &quick_cfg(10),
            &SwitchPolicy::Cuttlefish(cfg),
            None,
            &rec,
        )
        .unwrap();

        let switches = rec.filtered(|e| matches!(e, Event::SwitchTriggered { .. }));
        assert_eq!(switches.len(), 1, "exactly one switch event");
        match &switches[0] {
            Event::SwitchTriggered {
                e_hat,
                k_hat,
                decisions,
            } => {
                assert_eq!(Some(*e_hat), res.e_hat);
                assert_eq!(Some(*k_hat), res.k_hat);
                assert_eq!(decisions.len(), res.decisions.len());
            }
            _ => unreachable!(),
        }

        // One EpochStarted/EpochCompleted pair per epoch, profile events
        // from the K̂ scan, and a terminal manifest consistent with the
        // result.
        let starts = rec.filtered(|e| matches!(e, Event::EpochStarted { .. }));
        let ends = rec.filtered(|e| matches!(e, Event::EpochCompleted { .. }));
        assert_eq!(starts.len(), 10);
        assert_eq!(ends.len(), 10);
        assert!(!rec
            .filtered(|e| matches!(e, Event::ProfileMeasured { .. }))
            .is_empty());
        let manifests = rec.filtered(|e| matches!(e, Event::Manifest(_)));
        assert_eq!(manifests.len(), 1);
        match &manifests[0] {
            Event::Manifest(m) => {
                assert_eq!(m.e_hat, res.e_hat);
                assert_eq!(m.k_hat, res.k_hat);
                assert_eq!(m.policy, "cuttlefish");
                assert_eq!(m.params_full, res.params_full);
                assert_eq!(m.params_final, res.params_final);
                assert_eq!(
                    m.ranks.len(),
                    res.decisions.iter().filter(|d| d.chosen.is_some()).count()
                );
                assert!(m
                    .event_counts
                    .iter()
                    .any(|(k, n)| k == "manifest" && *n == 1));
            }
            _ => unreachable!(),
        }
    }
}
