//! Rank estimation metrics (paper §3.3 and Appendix C.2/D.1).
//!
//! The *stable rank* `Σᵢ σᵢ² / σ_max²` is a smooth proxy for the true rank
//! that ignores tiny singular values and needs no extra hyperparameters.
//! Because randomly-initialized weights are not estimated at full rank,
//! the *scaled* stable rank multiplies by `ξ = rank(W⁰)/stable_rank(Σ⁰)`
//! stored at initialization — without this, large-scale tasks lose
//! accuracy (paper Tables 15–16). For transformer weights, whose spectra
//! are much flatter (Figure 9), the appendix proposes taking the max with
//! the *accumulative rank*: the smallest `r` whose leading singular values
//! capture a fraction `p` of the spectrum's mass.

use crate::{CfResult, CuttlefishError};
use cuttlefish_tensor::svd::{power_iteration, svdvals};
use cuttlefish_tensor::Matrix;

/// Stable rank of a singular-value spectrum: `Σᵢ σᵢ² / σ_max²`.
///
/// Returns 0 for an all-zero (or empty) spectrum.
pub fn stable_rank(svals: &[f32]) -> f32 {
    let max = svals.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
    if max == 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = svals.iter().map(|&s| (s as f64) * (s as f64)).sum();
    (sum_sq / ((max as f64) * (max as f64))) as f32
}

/// Scaled stable rank `ξ · stable_rank(Σ)` (§3.3).
pub fn scaled_stable_rank(svals: &[f32], xi: f32) -> f32 {
    xi * stable_rank(svals)
}

/// The calibration factor `ξ = rank(W⁰) / stable_rank(Σ⁰)` computed from
/// the weight at initialization.
///
/// # Errors
///
/// Propagates SVD failures; returns `ξ = 1` for degenerate zero weights.
pub fn initial_scale(w0: &Matrix) -> CfResult<f32> {
    let svals = svdvals(w0)?;
    let sr = stable_rank(&svals);
    if sr <= 0.0 {
        return Ok(1.0);
    }
    Ok(w0.full_rank() as f32 / sr)
}

/// Accumulative rank (Appendix C.2): the smallest `r` such that
/// `Σ_{i≤r} σᵢ ≥ p · Σᵢ σᵢ`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]`.
pub fn accumulative_rank(svals: &[f32], p: f32) -> usize {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    let total: f64 = svals.iter().map(|&s| s as f64).sum();
    if total <= 0.0 {
        return 1;
    }
    let mut acc = 0.0f64;
    let mut sorted: Vec<f32> = svals.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    // Tolerance absorbs the f32→f64 widening of `p` (0.4f32 ≠ 0.4).
    let threshold = p as f64 * total - 1e-6 * total;
    for (i, &s) in sorted.iter().enumerate() {
        acc += s as f64;
        if acc >= threshold {
            return i + 1;
        }
    }
    sorted.len().max(1)
}

/// Estimates the stable rank of a weight matrix exactly, via singular
/// values (`scipy.linalg.svdvals` path, §4.3).
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn stable_rank_of(w: &Matrix) -> CfResult<f32> {
    let svals = svdvals(w)?;
    Ok(stable_rank(&svals))
}

/// Fast stable-rank estimate using `‖W‖_F²` and a power-iteration
/// `σ_max` — no full spectrum needed. Accurate to the power-iteration
/// tolerance; used by the overhead ablation bench.
///
/// # Errors
///
/// Propagates power-iteration failures on empty inputs.
pub fn stable_rank_fast(w: &Matrix) -> CfResult<f32> {
    let sigma_max = power_iteration(w, 100, 1e-7)?;
    if sigma_max == 0.0 {
        return Ok(0.0);
    }
    Ok((w.frobenius_norm_sq() / ((sigma_max as f64) * (sigma_max as f64))) as f32)
}

/// Converts an estimated (possibly fractional) rank into a usable integer
/// factorization rank, clamped to `[1, full_rank]`.
///
/// # Errors
///
/// Returns [`CuttlefishError::BadConfig`] if `full_rank == 0`.
pub fn clamp_rank(estimate: f32, full_rank: usize) -> CfResult<usize> {
    if full_rank == 0 {
        return Err(CuttlefishError::BadConfig {
            detail: "cannot clamp rank against a zero-dimensional weight".to_string(),
        });
    }
    Ok((estimate.round() as i64).clamp(1, full_rank as i64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stable_rank_flat_spectrum_is_count() {
        assert!((stable_rank(&[3.0; 7]) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn stable_rank_dominant_direction_is_one() {
        assert!((stable_rank(&[100.0, 0.01, 0.01]) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn stable_rank_zero_spectrum() {
        assert_eq!(stable_rank(&[0.0, 0.0]), 0.0);
        assert_eq!(stable_rank(&[]), 0.0);
    }

    #[test]
    fn stable_rank_is_at_most_count_and_at_least_one() {
        for seed in 0..5u64 {
            let w = randn_matrix(20, 8, 1.0, &mut StdRng::seed_from_u64(seed));
            let sr = stable_rank_of(&w).unwrap();
            assert!((1.0..=8.0).contains(&sr), "{sr}");
        }
    }

    #[test]
    fn scaled_stable_rank_calibrates_init_to_full() {
        // By construction, ξ·stable_rank(Σ⁰) == full rank at epoch 0.
        let w0 = randn_matrix(64, 32, 1.0, &mut StdRng::seed_from_u64(1));
        let xi = initial_scale(&w0).unwrap();
        let svals = svdvals(&w0).unwrap();
        let scaled = scaled_stable_rank(&svals, xi);
        assert!((scaled - 32.0).abs() < 0.5, "{scaled}");
        assert!(xi > 1.0, "random init is never estimated at full rank");
    }

    #[test]
    fn accumulative_rank_known_values() {
        let svals = [4.0, 3.0, 2.0, 1.0]; // total 10
        assert_eq!(accumulative_rank(&svals, 0.4), 1);
        assert_eq!(accumulative_rank(&svals, 0.7), 2);
        assert_eq!(accumulative_rank(&svals, 0.95), 4);
        assert_eq!(accumulative_rank(&svals, 1.0), 4);
    }

    #[test]
    fn accumulative_rank_handles_unsorted_input() {
        assert_eq!(accumulative_rank(&[1.0, 4.0, 2.0, 3.0], 0.4), 1);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn accumulative_rank_rejects_bad_p() {
        let _ = accumulative_rank(&[1.0], 1.5);
    }

    #[test]
    fn fast_estimate_matches_exact() {
        for seed in 0..4u64 {
            let w = randn_matrix(30, 12, 1.0, &mut StdRng::seed_from_u64(10 + seed));
            let exact = stable_rank_of(&w).unwrap();
            let fast = stable_rank_fast(&w).unwrap();
            assert!((exact - fast).abs() < 0.05 * exact, "{exact} vs {fast}");
        }
    }

    #[test]
    fn low_rank_matrix_has_low_stable_rank() {
        // Rank-2 matrix: stable rank ≤ 2 regardless of shape.
        let mut rng = StdRng::seed_from_u64(3);
        let a = randn_matrix(40, 2, 1.0, &mut rng);
        let b = randn_matrix(2, 30, 1.0, &mut rng);
        let w = a.matmul(&b).unwrap();
        let sr = stable_rank_of(&w).unwrap();
        assert!(sr <= 2.0 + 1e-3, "{sr}");
    }

    #[test]
    fn clamp_rank_bounds() {
        assert_eq!(clamp_rank(5.4, 10).unwrap(), 5);
        assert_eq!(clamp_rank(0.2, 10).unwrap(), 1);
        assert_eq!(clamp_rank(99.0, 10).unwrap(), 10);
        assert_eq!(clamp_rank(-3.0, 10).unwrap(), 1);
        assert!(clamp_rank(1.0, 0).is_err());
    }
}
