//! Task adapters: how a training run gets batches, losses, and metrics.
//!
//! The Cuttlefish controller is task-agnostic — the paper runs it on
//! CIFAR-style pre-training, GLUE fine-tuning, and BERT MLM pre-training.
//! Each modality implements [`TaskAdapter`].

use crate::{CfResult, CuttlefishError};
use cuttlefish_data::text::{f1_score, spearman, GlueTask, Labels, Metric};
use cuttlefish_data::vision::VisionTask;
use cuttlefish_data::MlmStream;
use cuttlefish_nn::loss::{accuracy, cross_entropy, masked_lm_loss, mse};
use cuttlefish_nn::{Act, Mode, Network};
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Supervision for one batch.
#[derive(Debug, Clone)]
pub enum Target {
    /// Classification labels.
    Classes(Vec<usize>),
    /// Regression scores (STS-B style).
    Scores(Vec<f32>),
    /// Masked-LM reconstruction targets.
    Mlm {
        /// Original token ids, row-major `(batch·tokens)`.
        targets: Vec<usize>,
        /// Which positions were masked.
        mask: Vec<bool>,
    },
}

/// One training batch: an input activation and its supervision.
#[derive(Debug, Clone)]
pub struct TaskBatch {
    /// Model input.
    pub input: Act,
    /// Supervision.
    pub target: Target,
}

/// A training task: batch source, loss, and validation metric.
pub trait TaskAdapter {
    /// Human-readable task name.
    fn name(&self) -> &str;

    /// Produces the (shuffled/augmented) batches of one epoch.
    ///
    /// # Errors
    ///
    /// Returns adapter-specific errors (shape problems in generated data).
    fn train_batches(
        &mut self,
        epoch: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> CfResult<Vec<TaskBatch>>;

    /// Loss value and gradient w.r.t. the network output.
    ///
    /// # Errors
    ///
    /// Returns [`CuttlefishError`] when logits and target disagree.
    fn loss_and_grad(
        &self,
        logits: &Act,
        target: &Target,
        label_smoothing: f32,
    ) -> CfResult<(f32, Act)>;

    /// Validation metric of the current network.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    fn evaluate(&self, net: &mut Network) -> CfResult<f32>;

    /// Whether larger metric values are better (false for MLM loss).
    fn higher_is_better(&self) -> bool {
        true
    }
}

/// Adapter for synthetic vision classification with flip/shift
/// augmentation.
#[derive(Debug)]
pub struct VisionAdapter {
    task: VisionTask,
    /// Apply augmentation during training.
    pub augment: bool,
}

impl VisionAdapter {
    /// Wraps a generated vision task.
    pub fn new(task: VisionTask) -> Self {
        VisionAdapter {
            task,
            augment: true,
        }
    }

    /// The underlying task.
    pub fn task(&self) -> &VisionTask {
        &self.task
    }

    fn to_image(&self, m: Matrix) -> CfResult<Act> {
        let (c, (h, w)) = (self.task.spec.channels, self.task.spec.hw);
        Ok(Act::image(m, c, h, w)?)
    }
}

impl TaskAdapter for VisionAdapter {
    fn name(&self) -> &str {
        &self.task.spec.name
    }

    fn train_batches(
        &mut self,
        _epoch: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> CfResult<Vec<TaskBatch>> {
        let raw = cuttlefish_data::shuffled_batches(
            &self.task.train_x,
            &self.task.train_y,
            batch_size,
            rng,
        );
        raw.into_iter()
            .map(|(x, y)| {
                let x = if self.augment {
                    self.task.augment(&x, rng)
                } else {
                    x
                };
                Ok(TaskBatch {
                    input: self.to_image(x)?,
                    target: Target::Classes(y),
                })
            })
            .collect()
    }

    fn loss_and_grad(
        &self,
        logits: &Act,
        target: &Target,
        label_smoothing: f32,
    ) -> CfResult<(f32, Act)> {
        let Target::Classes(labels) = target else {
            return Err(CuttlefishError::BadConfig {
                detail: "vision adapter expects class labels".to_string(),
            });
        };
        let (loss, grad) = cross_entropy(logits.data(), labels, label_smoothing)?;
        Ok((loss, Act::flat(grad)))
    }

    fn evaluate(&self, net: &mut Network) -> CfResult<f32> {
        let mut correct = 0.0f32;
        let mut total = 0usize;
        let n = self.task.val_x.rows();
        let chunk = 64usize;
        let mut i = 0;
        while i < n {
            let end = (i + chunk).min(n);
            let mut x = Matrix::zeros(end - i, self.task.val_x.cols());
            for (row, src) in (i..end).enumerate() {
                x.row_mut(row).copy_from_slice(self.task.val_x.row(src));
            }
            let act = self.to_image(x)?;
            let logits = net.forward(act, Mode::Eval)?;
            let labels = &self.task.val_y[i..end];
            correct += accuracy(logits.data(), labels) * (end - i) as f32;
            total += end - i;
            i = end;
        }
        Ok(correct / total.max(1) as f32)
    }
}

/// Adapter for synthetic GLUE fine-tuning (classification, F1, or
/// STS-B-style regression).
#[derive(Debug)]
pub struct GlueAdapter {
    task: GlueTask,
}

impl GlueAdapter {
    /// Wraps a generated GLUE task.
    pub fn new(task: GlueTask) -> Self {
        GlueAdapter { task }
    }

    /// The underlying task.
    pub fn task(&self) -> &GlueTask {
        &self.task
    }
}

impl TaskAdapter for GlueAdapter {
    fn name(&self) -> &str {
        self.task.name
    }

    fn train_batches(
        &mut self,
        _epoch: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> CfResult<Vec<TaskBatch>> {
        match &self.task.train_labels {
            Labels::Classes(y) => {
                let raw = cuttlefish_data::shuffled_batches(&self.task.train_x, y, batch_size, rng);
                Ok(raw
                    .into_iter()
                    .map(|(x, y)| TaskBatch {
                        input: Act::flat(x),
                        target: Target::Classes(y),
                    })
                    .collect())
            }
            Labels::Scores(s) => {
                // Reuse the integer batching machinery via index labels.
                let idx: Vec<usize> = (0..s.len()).collect();
                let raw =
                    cuttlefish_data::shuffled_batches(&self.task.train_x, &idx, batch_size, rng);
                Ok(raw
                    .into_iter()
                    .map(|(x, ids)| TaskBatch {
                        input: Act::flat(x),
                        target: Target::Scores(ids.iter().map(|&i| s[i]).collect()),
                    })
                    .collect())
            }
        }
    }

    fn loss_and_grad(
        &self,
        logits: &Act,
        target: &Target,
        label_smoothing: f32,
    ) -> CfResult<(f32, Act)> {
        match target {
            Target::Classes(labels) => {
                let (loss, grad) = cross_entropy(logits.data(), labels, label_smoothing)?;
                Ok((loss, Act::flat(grad)))
            }
            Target::Scores(scores) => {
                let t = Matrix::from_fn(scores.len(), 1, |i, _| scores[i]);
                let (loss, grad) = mse(logits.data(), &t)?;
                Ok((loss, Act::flat(grad)))
            }
            Target::Mlm { .. } => Err(CuttlefishError::BadConfig {
                detail: "glue adapter cannot consume MLM targets".to_string(),
            }),
        }
    }

    fn evaluate(&self, net: &mut Network) -> CfResult<f32> {
        let logits = net.forward(Act::flat(self.task.val_x.clone()), Mode::Eval)?;
        match (&self.task.val_labels, self.task.metric) {
            (Labels::Classes(y), Metric::Accuracy) => Ok(accuracy(logits.data(), y)),
            (Labels::Classes(y), Metric::F1) => {
                let pred: Vec<usize> = (0..logits.data().rows())
                    .map(|i| {
                        let row = logits.data().row(i);
                        (0..row.len())
                            .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                            .unwrap_or(0)
                    })
                    .collect();
                Ok(f1_score(&pred, y, 1))
            }
            (Labels::Scores(s), Metric::Spearman) => {
                let pred: Vec<f32> = (0..logits.data().rows())
                    .map(|i| logits.data().get(i, 0))
                    .collect();
                Ok(spearman(&pred, s))
            }
            _ => Err(CuttlefishError::BadConfig {
                detail: format!("metric/label mismatch on {}", self.task.name),
            }),
        }
    }
}

/// Adapter for masked-LM pre-training; the metric is the (lower-is-better)
/// validation MLM loss.
#[derive(Debug)]
pub struct MlmAdapter {
    stream: MlmStream,
    batches_per_epoch: usize,
    eval_ids: Matrix,
    eval_targets: Vec<usize>,
    eval_mask: Vec<bool>,
}

impl MlmAdapter {
    /// Creates the adapter with a fixed held-out evaluation batch.
    pub fn new(mut stream: MlmStream, batches_per_epoch: usize, eval_batch: usize) -> Self {
        let (eval_ids, eval_targets, eval_mask) = stream.sample_batch(eval_batch);
        MlmAdapter {
            stream,
            batches_per_epoch,
            eval_ids,
            eval_targets,
            eval_mask,
        }
    }
}

impl TaskAdapter for MlmAdapter {
    fn name(&self) -> &str {
        "mlm-pretrain"
    }

    fn train_batches(
        &mut self,
        _epoch: usize,
        batch_size: usize,
        _rng: &mut StdRng,
    ) -> CfResult<Vec<TaskBatch>> {
        Ok((0..self.batches_per_epoch)
            .map(|_| {
                let (ids, targets, mask) = self.stream.sample_batch(batch_size);
                TaskBatch {
                    input: Act::flat(ids),
                    target: Target::Mlm { targets, mask },
                }
            })
            .collect())
    }

    fn loss_and_grad(
        &self,
        logits: &Act,
        target: &Target,
        _label_smoothing: f32,
    ) -> CfResult<(f32, Act)> {
        let Target::Mlm { targets, mask } = target else {
            return Err(CuttlefishError::BadConfig {
                detail: "mlm adapter expects MLM targets".to_string(),
            });
        };
        let (loss, grad) = masked_lm_loss(logits.data(), targets, mask)?;
        Ok((loss, logits.with_data(grad)?))
    }

    fn evaluate(&self, net: &mut Network) -> CfResult<f32> {
        let logits = net.forward(Act::flat(self.eval_ids.clone()), Mode::Eval)?;
        let (loss, _) = masked_lm_loss(logits.data(), &self.eval_targets, &self.eval_mask)?;
        Ok(loss)
    }

    fn higher_is_better(&self) -> bool {
        false
    }
}

/// Deterministic RNG for a run seed.
pub fn run_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_data::vision::VisionSpec;
    use cuttlefish_data::{glue_suite, MlmStream};
    use cuttlefish_nn::models::{
        build_micro_bert, build_micro_resnet18, BertHead, MicroBertConfig, MicroResNetConfig,
    };

    #[test]
    fn vision_adapter_batches_and_loss() {
        let task = VisionTask::generate(&VisionSpec::tiny(), 0);
        let mut ad = VisionAdapter::new(task);
        let mut rng = run_rng(1);
        let batches = ad.train_batches(0, 16, &mut rng).unwrap();
        assert!(!batches.is_empty());
        let b = &batches[0];
        let logits = Act::flat(Matrix::zeros(b.input.data().rows(), 4));
        let (loss, grad) = ad.loss_and_grad(&logits, &b.target, 0.0).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-4);
        assert_eq!(grad.data().rows(), b.input.data().rows());
    }

    #[test]
    fn vision_evaluate_runs_net() {
        let task = VisionTask::generate(&VisionSpec::tiny(), 0);
        let ad = VisionAdapter::new(task);
        let mut rng = run_rng(2);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let acc = ad.evaluate(&mut net).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn glue_adapter_classification_and_regression() {
        let suite = glue_suite(16, 6, 0);
        for task in suite {
            let is_reg = task.metric == Metric::Spearman;
            let mut ad = GlueAdapter::new(task);
            let mut rng = run_rng(3);
            let batches = ad.train_batches(0, 8, &mut rng).unwrap();
            let b = &batches[0];
            let width = if is_reg { 1 } else { ad.task().classes };
            let logits = Act::flat(Matrix::zeros(b.input.data().rows(), width));
            let (loss, _) = ad.loss_and_grad(&logits, &b.target, 0.0).unwrap();
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn mlm_adapter_round_trip() {
        let stream = MlmStream::new(32, 8, 0);
        let mut ad = MlmAdapter::new(stream, 2, 4);
        assert!(!ad.higher_is_better());
        let mut rng = run_rng(4);
        let batches = ad.train_batches(0, 4, &mut rng).unwrap();
        assert_eq!(batches.len(), 2);
        let mut net = build_micro_bert(
            &MicroBertConfig {
                head: BertHead::MaskedLm,
                ..MicroBertConfig::tiny_mlm()
            },
            &mut rng,
        );
        let loss = ad.evaluate(&mut net).unwrap();
        assert!(loss > 0.0 && loss.is_finite());
    }

    #[test]
    fn wrong_target_kind_is_rejected() {
        let task = VisionTask::generate(&VisionSpec::tiny(), 0);
        let ad = VisionAdapter::new(task);
        let logits = Act::flat(Matrix::zeros(2, 4));
        let bad = Target::Scores(vec![0.5, 0.5]);
        assert!(ad.loss_and_grad(&logits, &bad, 0.0).is_err());
    }
}
