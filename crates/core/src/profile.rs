//! Algorithm 2: profiling to determine `K̂`.
//!
//! For each layer stack (in depth order) the profiler compares the model's
//! forward time with only that stack factorized at the probe ratio `ρ̄`
//! against the full-rank forward time of the same layers. Scanning from
//! the front, the first stack whose factorization speeds its layers up by
//! at least `v×` sets the boundary: everything before it stays full-rank
//! (`K̂` = number of earlier targets), everything from it on is eligible.
//!
//! Times come from the occupancy-aware roofline model
//! ([`cuttlefish_perf`]), the reproduction's substitute for timed CUDA
//! iterations — deterministic and resolution-independent, so `K̂` can be
//! derived from the *paper-scale* layer shapes even while training runs on
//! micro models.

use cuttlefish_nn::TargetInfo;
use cuttlefish_perf::{target_time, target_time_factored, DeviceProfile};
use cuttlefish_telemetry::{span, Event, NullRecorder, Recorder};
use serde::{Deserialize, Serialize};

/// Per-stack profiling measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackProfile {
    /// Stack id.
    pub stack: usize,
    /// Simulated forward time of the stack's layers at full rank (s).
    pub full_time: f64,
    /// Simulated forward time with the stack factorized at ρ̄ (s).
    pub factored_time: f64,
}

impl StackProfile {
    /// `full_time / factored_time`.
    pub fn speedup(&self) -> f64 {
        if self.factored_time > 0.0 {
            self.full_time / self.factored_time
        } else {
            f64::INFINITY
        }
    }
}

/// The outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileOutcome {
    /// Number of leading targets left at full rank (the paper's `K̂`).
    pub k_hat: usize,
    /// First stack id that is factorized (targets in earlier stacks are
    /// kept full-rank).
    pub cut_stack: usize,
    /// Per-stack measurements, in stack order.
    pub stacks: Vec<StackProfile>,
}

/// Profiler configuration.
///
/// # Example
///
/// ```
/// use cuttlefish::profile::Profiler;
/// use cuttlefish_perf::{arch, DeviceProfile};
///
/// let profiler = Profiler::new(DeviceProfile::v100(), 1024);
/// let outcome = profiler.determine_k(&arch::resnet18_cifar(10));
/// // The paper's Table 8 value for ResNet-18 on CIFAR-10.
/// assert_eq!(outcome.k_hat, 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    /// Device model to time against.
    pub device: DeviceProfile,
    /// Training batch size (arithmetic intensity depends on it, §3.5).
    pub batch: usize,
    /// Probe rank ratio ρ̄ (the paper uses 1/4).
    pub rho_bar: f32,
    /// Required speedup threshold `v` (the paper uses 1.5).
    pub v: f64,
}

impl Profiler {
    /// Creates a profiler with the paper's defaults (ρ̄ = 1/4, v = 1.5).
    pub fn new(device: DeviceProfile, batch: usize) -> Self {
        Profiler {
            device,
            batch,
            rho_bar: 0.25,
            v: 1.5,
        }
    }

    /// Profiles every stack and determines `K̂` over the given target list.
    ///
    /// The final stack (the classifier head) is never considered for
    /// factorization by the paper and is excluded from the scan.
    pub fn determine_k(&self, targets: &[TargetInfo]) -> ProfileOutcome {
        self.determine_k_with(targets, &NullRecorder)
    }

    /// Like [`determine_k`](Self::determine_k), emitting one
    /// [`Event::ProfileMeasured`] per profiled stack plus a `"profiling"`
    /// span to the given recorder.
    pub fn determine_k_with(
        &self,
        targets: &[TargetInfo],
        recorder: &dyn Recorder,
    ) -> ProfileOutcome {
        let _span = span("profiling", recorder);
        let outcome = self.scan(targets);
        for p in &outcome.stacks {
            recorder.record(Event::ProfileMeasured {
                stack: p.stack,
                full_time_s: p.full_time,
                factored_time_s: p.factored_time,
                speedup: p.speedup(),
                threshold: self.v,
            });
        }
        outcome
    }

    fn scan(&self, targets: &[TargetInfo]) -> ProfileOutcome {
        let mut stack_ids: Vec<usize> = targets.iter().map(|t| t.stack).collect();
        stack_ids.sort_unstable();
        stack_ids.dedup();
        let last_stack = stack_ids.last().copied().unwrap_or(0);

        let mut stacks = Vec::new();
        for &s in &stack_ids {
            if s == last_stack && stack_ids.len() > 1 {
                // Classifier stack: excluded (the last layer is never
                // factorized, §3.2).
                continue;
            }
            let members: Vec<&TargetInfo> = targets.iter().filter(|t| t.stack == s).collect();
            let full: f64 = members
                .iter()
                .map(|t| target_time(&self.device, &t.kind, self.batch))
                .sum();
            let fact: f64 = members
                .iter()
                .map(|t| {
                    let r = ((t.full_rank() as f32 * self.rho_bar).round() as usize).max(1);
                    target_time_factored(&self.device, &t.kind, self.batch, r)
                })
                .sum();
            stacks.push(StackProfile {
                stack: s,
                full_time: full,
                factored_time: fact,
            });
        }

        // Scan from the front: the first stack clearing the threshold is
        // where factorization starts.
        let cut_stack = stacks
            .iter()
            .find(|p| p.speedup() >= self.v)
            .map(|p| p.stack)
            .unwrap_or(last_stack); // nothing speeds up ⇒ keep all full-rank
        let k_hat = targets.iter().filter(|t| t.stack < cut_stack).count();
        ProfileOutcome {
            k_hat,
            cut_stack,
            stacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_perf::arch::{deit_base, resnet18_cifar, resnet50_imagenet, vgg19_cifar};

    #[test]
    fn resnet18_keeps_first_stack_full_rank() {
        // Paper Figure 4 / Table 8: the stem + stack 1 show no meaningful
        // speedup at CIFAR scale (batch 1024, V100) ⇒ K̂ = 5.
        let p = Profiler::new(DeviceProfile::v100(), 1024);
        let out = p.determine_k(&resnet18_cifar(10));
        assert_eq!(out.k_hat, 5, "stacks: {:?}", out.stacks);
        assert_eq!(out.cut_stack, 2);
        // First-stack speedup below threshold, deep-stack above.
        let s1 = out.stacks.iter().find(|s| s.stack == 1).unwrap();
        assert!(s1.speedup() < 1.5, "stack1 speedup {}", s1.speedup());
        let s4 = out.stacks.iter().find(|s| s.stack == 4).unwrap();
        assert!(s4.speedup() > 1.5, "stack4 speedup {}", s4.speedup());
    }

    #[test]
    fn vgg19_keeps_early_groups_full_rank() {
        let p = Profiler::new(DeviceProfile::v100(), 1024);
        let out = p.determine_k(&vgg19_cifar(10));
        // Paper Table 8: K̂ = 4 (first two width groups). The roofline
        // reproduces "small but nonzero": at least the 64-wide group stays.
        assert!(out.k_hat >= 2, "k_hat = {} ({:?})", out.k_hat, out.stacks);
        assert!(out.k_hat <= 4);
    }

    #[test]
    fn resnet50_imagenet_keeps_early_layers() {
        // Paper Table 9: K = 40 of 54 — profiling at batch 256 on T4 keeps
        // a large prefix full-rank.
        let p = Profiler::new(DeviceProfile::t4(), 256);
        let out = p.determine_k(&resnet50_imagenet());
        assert!(out.k_hat >= 10, "k_hat = {}", out.k_hat);
        assert!(out.k_hat < 54);
    }

    #[test]
    fn transformer_factorizes_everything_after_embedding() {
        // Paper §3.5: all transformer blocks have identical shapes and
        // high intensity ⇒ K̂ = 1 (only the patch embedding stays).
        let p = Profiler::new(DeviceProfile::a100(), 256);
        let out = p.determine_k(&deit_base());
        assert_eq!(out.k_hat, 1, "stacks: {:?}", out.stacks);
    }

    #[test]
    fn higher_threshold_keeps_more_layers() {
        let mut p = Profiler::new(DeviceProfile::v100(), 1024);
        let base = p.determine_k(&resnet18_cifar(10)).k_hat;
        p.v = 3.0;
        let strict = p.determine_k(&resnet18_cifar(10)).k_hat;
        assert!(strict >= base, "{strict} vs {base}");
    }

    #[test]
    fn small_batch_reduces_speedups() {
        // Arithmetic intensity grows with batch (§3.5): at batch 16 fewer
        // stacks clear the threshold than at batch 1024.
        let p_small = Profiler::new(DeviceProfile::v100(), 8);
        let p_big = Profiler::new(DeviceProfile::v100(), 1024);
        let t = resnet18_cifar(10);
        let small_cut = p_small.determine_k(&t).k_hat;
        let big_cut = p_big.determine_k(&t).k_hat;
        assert!(small_cut >= big_cut, "{small_cut} vs {big_cut}");
    }
}
