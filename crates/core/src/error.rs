use cuttlefish_nn::{NnError, VerifyError};
use cuttlefish_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for the Cuttlefish controller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CuttlefishError {
    /// A network operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// Invalid controller configuration.
    BadConfig {
        /// Explanation of the invalid configuration.
        detail: String,
    },
    /// A configuration field failed ahead-of-time validation — the run is
    /// refused before any kernel executes.
    InvalidConfig {
        /// The offending field (e.g. `"epsilon"`).
        field: &'static str,
        /// Explanation of the rejected value.
        detail: String,
    },
    /// The model failed static verification ([`cuttlefish_nn::Network::verify`]).
    Verify(VerifyError),
}

impl fmt::Display for CuttlefishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CuttlefishError::Nn(e) => write!(f, "network error: {e}"),
            CuttlefishError::Tensor(e) => write!(f, "tensor error: {e}"),
            CuttlefishError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            CuttlefishError::InvalidConfig { field, detail } => {
                write!(f, "invalid configuration: `{field}` {detail}")
            }
            CuttlefishError::Verify(e) => write!(f, "model verification failed: {e}"),
        }
    }
}

impl Error for CuttlefishError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CuttlefishError::Nn(e) => Some(e),
            CuttlefishError::Tensor(e) => Some(e),
            CuttlefishError::Verify(e) => Some(e),
            CuttlefishError::BadConfig { .. } | CuttlefishError::InvalidConfig { .. } => None,
        }
    }
}

impl From<NnError> for CuttlefishError {
    fn from(e: NnError) -> Self {
        CuttlefishError::Nn(e)
    }
}

impl From<TensorError> for CuttlefishError {
    fn from(e: TensorError) -> Self {
        CuttlefishError::Tensor(e)
    }
}

impl From<VerifyError> for CuttlefishError {
    fn from(e: VerifyError) -> Self {
        CuttlefishError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let ne: CuttlefishError = NnError::BadConfig { detail: "x".into() }.into();
        assert!(ne.source().is_some());
        let te: CuttlefishError = TensorError::NoConvergence {
            algorithm: "a",
            iterations: 1,
        }
        .into();
        assert!(te.to_string().contains("tensor"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CuttlefishError>();
    }
}
