//! Loss functions.
//!
//! Each loss returns both the scalar loss and the gradient with respect to
//! the logits, averaged over the batch, ready to feed into
//! [`crate::Network::backward`].

use crate::{NnError, NnResult};
use cuttlefish_tensor::Matrix;

/// Numerically-stable row-wise log-softmax.
fn log_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        let dst = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            dst[j] = v - logsum;
        }
    }
    out
}

/// Softmax cross-entropy with optional label smoothing.
///
/// With smoothing `s`, the target distribution is
/// `(1 − s)·one_hot + s/C` (the formulation used for the paper's ImageNet
/// runs, §4.1). Returns `(mean loss, d loss / d logits)`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] when the label count disagrees with the
/// batch, a label is out of range, or `smoothing ∉ [0, 1)`.
pub fn cross_entropy(logits: &Matrix, labels: &[usize], smoothing: f32) -> NnResult<(f32, Matrix)> {
    let (n, c) = logits.shape();
    if labels.len() != n {
        return Err(NnError::BadConfig {
            detail: format!("{} labels for batch of {n}", labels.len()),
        });
    }
    if !(0.0..1.0).contains(&smoothing) {
        return Err(NnError::BadConfig {
            detail: format!("label smoothing {smoothing} outside [0, 1)"),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(NnError::BadConfig {
            detail: format!("label {bad} out of range for {c} classes"),
        });
    }
    let logp = log_softmax_rows(logits);
    let off = smoothing / c as f32;
    let on = 1.0 - smoothing + off;
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(n, c);
    for (i, &label) in labels.iter().enumerate().take(n) {
        let lp = logp.row(i);
        let mut row_loss = 0.0f64;
        for (j, &lpj) in lp.iter().enumerate().take(c) {
            let target = if j == label { on } else { off };
            row_loss -= (target * lpj) as f64;
            // d/dlogit = softmax - target.
            grad.set(i, j, (lpj.exp() - target) / n as f32);
        }
        loss += row_loss;
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Mean squared error `mean((y − t)²)`; returns `(loss, d loss / d y)`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] on shape mismatch.
pub fn mse(y: &Matrix, target: &Matrix) -> NnResult<(f32, Matrix)> {
    if y.shape() != target.shape() {
        return Err(NnError::BadConfig {
            detail: format!("mse shapes {:?} vs {:?}", y.shape(), target.shape()),
        });
    }
    let n = y.len().max(1) as f32;
    let diff = y.sub(target)?;
    let loss = (diff.frobenius_norm_sq() / n as f64) as f32;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Masked-LM cross-entropy: rows of `logits` are `(B·T, vocab)` token
/// predictions; only positions where `mask[i]` is true contribute, with
/// `targets[i]` giving the original token id there. Returns
/// `(mean loss over masked positions, gradient)`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] when lengths disagree, no position is
/// masked, or a target id is out of the vocabulary.
pub fn masked_lm_loss(
    logits: &Matrix,
    targets: &[usize],
    mask: &[bool],
) -> NnResult<(f32, Matrix)> {
    let (n, vocab) = logits.shape();
    if targets.len() != n || mask.len() != n {
        return Err(NnError::BadConfig {
            detail: format!(
                "mlm lengths: {} logits rows, {} targets, {} mask entries",
                n,
                targets.len(),
                mask.len()
            ),
        });
    }
    let count = mask.iter().filter(|&&m| m).count();
    if count == 0 {
        return Err(NnError::BadConfig {
            detail: "mlm loss needs at least one masked position".to_string(),
        });
    }
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(n, vocab);
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        if targets[i] >= vocab {
            return Err(NnError::BadConfig {
                detail: format!("mlm target {} out of vocab {vocab}", targets[i]),
            });
        }
        let lp = logp.row(i);
        loss -= lp[targets[i]] as f64;
        let dst = grad.row_mut(i);
        for j in 0..vocab {
            let target = if j == targets[i] { 1.0 } else { 0.0 };
            dst[j] = (lp[j].exp() - target) / count as f32;
        }
    }
    Ok(((loss / count as f64) as f32, grad))
}

/// Classification accuracy of `logits` against `labels`, in `[0, 1]`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f32 {
    if logits.rows() == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let mut best = 0usize;
        for j in 1..row.len() {
            if row[j] > row[best] {
                best = j;
            }
        }
        if labels.get(i) == Some(&best) {
            correct += 1;
        }
    }
    correct as f32 / logits.rows() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits ⇒ loss = ln(C).
        let logits = Matrix::zeros(3, 4);
        let (loss, grad) = cross_entropy(&logits, &[0, 1, 2], 0.0).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 2, 20.0);
        let (loss, _) = cross_entropy(&logits, &[2], 0.0).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.1]]).unwrap();
        let (_, grad) = cross_entropy(&logits, &[1], 0.1).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + eps);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - eps);
            let (lp_loss, _) = cross_entropy(&lp, &[1], 0.1).unwrap();
            let (lm_loss, _) = cross_entropy(&lm, &[1], 0.1).unwrap();
            let fd = (lp_loss - lm_loss) / (2.0 * eps);
            assert!((grad.get(0, j) - fd).abs() < 1e-3, "j={j}");
        }
    }

    #[test]
    fn cross_entropy_validates() {
        let logits = Matrix::zeros(2, 3);
        assert!(cross_entropy(&logits, &[0], 0.0).is_err());
        assert!(cross_entropy(&logits, &[0, 3], 0.0).is_err());
        assert!(cross_entropy(&logits, &[0, 1], 1.0).is_err());
    }

    #[test]
    fn label_smoothing_raises_confident_loss() {
        let mut logits = Matrix::zeros(1, 4);
        logits.set(0, 0, 10.0);
        let (l0, _) = cross_entropy(&logits, &[0], 0.0).unwrap();
        let (ls, _) = cross_entropy(&logits, &[0], 0.1).unwrap();
        assert!(ls > l0);
    }

    #[test]
    fn mse_known() {
        let y = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let (loss, grad) = mse(&y, &t).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(mse(&y, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn mlm_only_masked_positions_count() {
        let mut logits = Matrix::zeros(4, 5);
        logits.set(0, 1, 10.0); // masked, correct
        logits.set(2, 0, -10.0); // unmasked garbage, should not matter
        let targets = vec![1, 0, 0, 0];
        let mask = vec![true, false, false, false];
        let (loss, grad) = masked_lm_loss(&logits, &targets, &mask).unwrap();
        assert!(loss < 1e-3);
        // Unmasked rows get zero gradient.
        assert_eq!(grad.row(2).iter().map(|v| v.abs()).sum::<f32>(), 0.0);
    }

    #[test]
    fn mlm_validates() {
        let logits = Matrix::zeros(2, 3);
        assert!(masked_lm_loss(&logits, &[0], &[true, false]).is_err());
        assert!(masked_lm_loss(&logits, &[0, 0], &[false, false]).is_err());
        assert!(masked_lm_loss(&logits, &[5, 0], &[true, false]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_rows(&[vec![1.0, 3.0], vec![5.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let acc = accuracy(&logits, &[1, 0, 0]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }
}
