use cuttlefish_tensor::Matrix;

/// A trainable parameter: value, gradient, and optimizer slots.
///
/// Optimizer state (momentum buffers, Adam moments) is stored *inside* the
/// parameter. This is deliberate: when Cuttlefish factorizes a layer
/// mid-training, the dense `W` parameter is replaced by fresh `(U, Vᵀ)`
/// parameters, and keeping state inline means the swap cannot silently
/// associate stale momentum with the wrong tensor — new params simply start
/// with empty slots, matching the paper's PyTorch implementation, which
/// constructs a new optimizer at the switch.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Whether generic L2 weight decay applies. Disabled for biases and
    /// BatchNorm parameters (paper Appendix C.1) and for factor pairs when
    /// Frobenius decay manages their regularization instead.
    pub weight_decay: bool,
    /// Optimizer slots, lazily created by the optimizer on first step.
    pub slots: Vec<Matrix>,
}

impl Param {
    /// Creates a parameter with a zeroed gradient and standard weight decay.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            value,
            grad,
            weight_decay: true,
            slots: Vec::new(),
        }
    }

    /// Creates a parameter exempt from generic weight decay (bias / BN /
    /// Frobenius-decay-managed factors).
    pub fn new_no_decay(value: Matrix) -> Self {
        let mut p = Param::new(value);
        p.weight_decay = false;
        p
    }

    /// Zeroes the gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }

    /// Accumulates `alpha * g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate_grad(&mut self, alpha: f32, g: &Matrix) {
        self.grad
            .axpy(alpha, g)
            .expect("gradient shape must match parameter shape");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::eye(3));
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.weight_decay);
        assert_eq!(p.count(), 9);
    }

    #[test]
    fn no_decay_constructor() {
        let p = Param::new_no_decay(Matrix::zeros(1, 4));
        assert!(!p.weight_decay);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.accumulate_grad(2.0, &Matrix::eye(2));
        assert_eq!(p.grad.get(0, 0), 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn accumulate_panics_on_shape_mismatch() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.accumulate_grad(1.0, &Matrix::zeros(3, 3));
    }
}
