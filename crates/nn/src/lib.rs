//! From-scratch neural-network substrate for the Cuttlefish reproduction.
//!
//! The Cuttlefish algorithm (Wang et al., MLSys 2023) switches a network
//! from **full-rank** to **low-rank factorized** training *mid-run*. That
//! requirement shapes this crate's central abstraction: every weight that
//! the paper tracks lives behind a [`weight::FactorableWeight`], which is
//! either a dense matrix `W` or a factored pair `(U, Vᵀ)` with an optional
//! extra BatchNorm between the factors (§4.1 "Extra BatchNorm layers").
//! Swapping state is an `O(1)` operation performed by the `cuttlefish`
//! crate once the stable ranks converge.
//!
//! The rest of the crate is a compact but complete training stack:
//!
//! * [`layers`] — convolution (via im2col), linear, batch/layer norm,
//!   activations, pooling, embeddings, multi-head attention, mixer blocks,
//!   residual and sequential containers; every layer has an exact manual
//!   backward pass (gradient-checked in the test suite).
//! * [`loss`] — softmax cross-entropy (with label smoothing), MSE, and
//!   masked-LM cross-entropy.
//! * [`optim`] — SGD with momentum and AdamW, with optimizer slots stored
//!   *inside* each [`Param`] so the full→low-rank swap composes cleanly.
//! * [`schedule`] — linear warmup + multi-step decay (the Goyal et al.
//!   schedule used for CIFAR/ImageNet) and cosine decay (DeiT/ResMLP).
//! * [`models`] — micro versions of the paper's architectures
//!   (ResNet-18/50, WideResNet-50-2, VGG-19, DeiT, ResMLP, BERT) that keep
//!   the original stack topology at laptop scale.
//!
//! # Example
//!
//! ```
//! use cuttlefish_nn::models::{MicroResNetConfig, build_micro_resnet18};
//! use cuttlefish_nn::{Act, Mode};
//! use cuttlefish_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), cuttlefish_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = MicroResNetConfig::tiny(10);
//! let mut net = build_micro_resnet18(&cfg, &mut rng);
//! let x = Act::image(Matrix::zeros(2, 3 * 8 * 8), 3, 8, 8)?;
//! let logits = net.forward(x, Mode::Eval)?;
//! assert_eq!(logits.data().shape(), (2, 10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod act;
mod error;
mod network;
mod param;

pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod schedule;
pub mod shapecheck;
pub mod weight;

pub use act::{Act, ActKind};
pub use error::NnError;
pub use network::{Network, TargetInfo, TargetKind};
pub use param::Param;
pub use shapecheck::{SymShape, VerifyError, VerifyReport};

/// Result alias for fallible network operations.
pub type NnResult<T> = std::result::Result<T, NnError>;

/// Whether a forward pass is part of training (updates BN statistics,
/// caches activations for backward) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training mode: batch statistics, caches kept for backprop.
    Train,
    /// Inference mode: running statistics, no caches required.
    #[default]
    Eval,
}

impl Mode {
    /// True when in [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}
