//! Neural-network layers with exact manual backward passes.
//!
//! Every layer implements [`Layer`]: `forward` consumes an [`Act`] and, in
//! [`Mode::Train`], caches whatever its `backward` needs; `backward`
//! consumes the output gradient and returns the input gradient while
//! accumulating parameter gradients. Containers ([`Sequential`],
//! [`Residual`]) recurse; factorizable layers expose their
//! [`FactorableWeight`]s through [`Layer::visit_weights`] so the
//! `cuttlefish` crate can track spectra and perform the mid-training
//! factorization swap.

mod act_fn;
mod attention;
mod container;
mod conv;
mod dropout;
mod embedding;
mod linear;
mod norm;
mod pool;
mod seq_ops;

pub use act_fn::{Gelu, Relu};
pub use attention::MultiHeadAttention;
pub use container::{Residual, Sequential};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use embedding::{Embedding, PosEmbedding};
pub use linear::Linear;
pub use norm::{BatchNorm2d, LayerNorm};
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use seq_ops::{ImageToSeq, SeqMeanPool, TakeToken, TokenTranspose};

use crate::shapecheck::{SymShape, VerifyError};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnResult, Param};

/// A differentiable network layer.
///
/// The contract: a train-mode `forward` must precede each `backward`, and
/// caches are consumed by `backward` (one forward, one backward per step).
pub trait Layer: std::fmt::Debug {
    /// Unique (within the network) name of this layer, used to address
    /// factorization targets, e.g. `"stack2.block0.conv1"`.
    fn name(&self) -> &str;

    /// Computes the layer output. In train mode, caches state for
    /// [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::NnError::BadActivation`] when handed
    /// an activation of the wrong kind or width.
    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act>;

    /// Propagates the output gradient, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingCache`] when no train-mode forward
    /// preceded this call.
    fn backward(&mut self, dy: Act) -> NnResult<Act>;

    /// Visits every trainable parameter in a deterministic order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every trainable parameter with a stable human-readable name,
    /// in the same order as [`Layer::visit_params`].
    ///
    /// The default labels the layer's parameters `<layer>#<i>` by position;
    /// containers override this to recurse so the owning leaf layer is the
    /// one named. Checkpoint restore uses these names to report *which*
    /// parameter mismatched instead of a bare visit index.
    fn visit_params_named(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        let name = self.name().to_string();
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            f(&format!("{name}#{i}"), p);
            i += 1;
        });
    }

    /// Visits every factorable weight, passing its fully-qualified name.
    fn visit_weights(&mut self, _f: &mut dyn FnMut(&str, &mut FactorableWeight)) {}

    /// Visits every BatchNorm scale/shift pair `(γ, β)` with the owning
    /// layer's name — used by structured-pruning baselines (network
    /// slimming / EB-Train) that rank channels by `|γ|`.
    fn visit_gammas(&mut self, _f: &mut dyn FnMut(&str, &mut Param, &mut Param)) {}

    /// Infers the output shape for a symbolic input — the static mirror of
    /// [`Layer::forward`], executing no kernels. Used by
    /// [`crate::Network::verify`] to prove a layer graph well-formed ahead
    /// of time.
    ///
    /// The default rejects with [`VerifyError::Unsupported`] so that a new
    /// layer type fails verification loudly until it declares its shape
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] naming this layer when the input shape is
    /// not acceptable.
    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let _ = x;
        Err(VerifyError::Unsupported {
            layer: self.name().to_string(),
        })
    }
}

/// Boxed layer, the unit of composition in [`Sequential`].
pub type BoxedLayer = Box<dyn Layer + Send>;
