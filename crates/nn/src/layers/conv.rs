use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::im2col::{col2im, im2col_into, ConvGeometry};
use cuttlefish_tensor::{Matrix, Tensor4};
use rand::Rng;

/// A 2-D convolution computed as `im2col · W`, where `W` is the paper's
/// unrolled `(in·k², out)` kernel matrix behind a [`FactorableWeight`].
///
/// When factorized, the layer *is* the paper's thin-conv + 1×1-conv pair:
/// `patches · U` is a convolution with `r` filters and the `Vᵀ` matmul acts
/// per spatial position, which is exactly a 1×1 convolution (§2.1).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    weight: FactorableWeight,
    bias: Option<Param>,
    geom: ConvGeometry,
    /// Cached (batch, in_h, in_w, out_h, out_w) from the last train forward.
    cache_dims: Option<(usize, usize, usize, usize, usize)>,
    /// Reusable im2col patch workspace: after the first forward at a given
    /// input size, unrolling allocates nothing. This is what makes a
    /// serving replica's steady-state forward passes allocation-light.
    patches: Matrix,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `bias` is normally false in the paper's CNNs (BatchNorm follows every
    /// conv).
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        geom: ConvGeometry,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let kern = cuttlefish_tensor::init::kaiming_conv(
            geom.out_channels,
            geom.in_channels,
            geom.kernel,
            rng,
        );
        let w = kern.unroll_conv_kernel();
        Conv2d {
            name: name.into(),
            weight: FactorableWeight::new_full(w),
            bias: bias.then(|| Param::new_no_decay(Matrix::zeros(1, geom.out_channels))),
            geom,
            cache_dims: None,
            patches: Matrix::zeros(0, 0),
        }
    }

    /// Creates a convolution from an explicit unrolled `(in·k², out)` weight.
    ///
    /// # Panics
    ///
    /// Panics if the weight shape disagrees with the geometry.
    pub fn from_weight(name: impl Into<String>, geom: ConvGeometry, w: Matrix) -> Self {
        assert_eq!(
            w.shape(),
            (
                geom.in_channels * geom.kernel * geom.kernel,
                geom.out_channels
            ),
            "unrolled kernel shape must match geometry"
        );
        Conv2d {
            name: name.into(),
            weight: FactorableWeight::new_full(w),
            bias: None,
            geom,
            cache_dims: None,
            patches: Matrix::zeros(0, 0),
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// The factorable weight.
    pub fn weight(&self) -> &FactorableWeight {
        &self.weight
    }

    /// Converts per-position rows `(B·oh·ow, out)` to an image matrix
    /// `(B, out·oh·ow)`.
    fn rows_to_image(rows: &Matrix, b: usize, out_c: usize, oh: usize, ow: usize) -> Matrix {
        let mut out = Matrix::zeros(b, out_c * oh * ow);
        for bi in 0..b {
            for p in 0..oh * ow {
                let src = rows.row(bi * oh * ow + p);
                for (o, &v) in src.iter().enumerate().take(out_c) {
                    out.set(bi, o * oh * ow + p, v);
                }
            }
        }
        out
    }

    /// Inverse of [`Conv2d::rows_to_image`].
    fn image_to_rows(img: &Matrix, b: usize, out_c: usize, oh: usize, ow: usize) -> Matrix {
        let mut out = Matrix::zeros(b * oh * ow, out_c);
        for bi in 0..b {
            for p in 0..oh * ow {
                let dst = out.row_mut(bi * oh * ow + p);
                for (o, slot) in dst.iter_mut().enumerate() {
                    *slot = img.get(bi, o * oh * ow + p);
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (c, h, w) = x.expect_image(&self.name)?;
        if c != self.geom.in_channels {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("expected {} input channels, got {c}", self.geom.in_channels),
            });
        }
        let b = x.data().rows();
        let t4 = Tensor4::from_matrix(x.data(), c, h, w)?;
        // Unroll into the layer-owned workspace; the factorable weight
        // clones what its backward pass needs, so reuse is safe in both
        // modes. The workspace stays owned by `self` throughout — including
        // every error path — so its high-water-mark allocation survives
        // batches that shrink and later regrow.
        im2col_into(&t4, &self.geom, &mut self.patches)?;
        let (oh, ow) = self.geom.output_hw(h, w)?;
        let mut y_rows = self.weight.forward(&self.patches, mode)?;
        if let Some(bparam) = &self.bias {
            for i in 0..y_rows.rows() {
                let row = y_rows.row_mut(i);
                for (j, v) in row.iter_mut().enumerate() {
                    *v += bparam.value.get(0, j);
                }
            }
        }
        if mode.is_train() {
            self.cache_dims = Some((b, h, w, oh, ow));
        }
        let img = Self::rows_to_image(&y_rows, b, self.geom.out_channels, oh, ow);
        Act::image(img, self.geom.out_channels, oh, ow)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (b, h, w, oh, ow) = self
            .cache_dims
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let dy_rows = Self::image_to_rows(dy.data(), b, self.geom.out_channels, oh, ow);
        if let Some(bparam) = &mut self.bias {
            for i in 0..dy_rows.rows() {
                let row = dy_rows.row(i);
                for (j, &v) in row.iter().enumerate() {
                    bparam.grad.set(0, j, bparam.grad.get(0, j) + v);
                }
            }
        }
        let dpatches = self.weight.backward(&dy_rows)?;
        let dx_t4 = col2im(&dpatches, &self.geom, b, h, w)?;
        Act::image(dx_t4.to_matrix(), self.geom.in_channels, h, w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.weight.visit_params(f);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        f(&self.name, &mut self.weight);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Image {
            channels,
            height,
            width,
        } = *x
        else {
            return Err(reject(&self.name, x, "expected an image activation"));
        };
        if channels != self.geom.in_channels {
            return Err(reject(
                &self.name,
                x,
                format!(
                    "expected {} input channels, got {channels}",
                    self.geom.in_channels
                ),
            ));
        }
        let (oh, ow) = self
            .geom
            .output_hw(height, width)
            .map_err(|e| reject(&self.name, x, e.to_string()))?;
        Ok(SymShape::Image {
            channels: self.geom.out_channels,
            height: oh,
            width: ow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c1", geom(3, 8, 3, 1, 1), false, &mut rng);
        let x = Act::image(Matrix::zeros(2, 3 * 6 * 6), 3, 6, 6).unwrap();
        let y = conv.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.expect_image("t").unwrap(), (8, 6, 6));
        assert_eq!(y.data().shape(), (2, 8 * 36));
    }

    #[test]
    fn strided_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c1", geom(4, 8, 3, 2, 1), false, &mut rng);
        let x = Act::image(Matrix::zeros(1, 4 * 8 * 8), 4, 8, 8).unwrap();
        let y = conv.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.expect_image("t").unwrap(), (8, 4, 4));
    }

    #[test]
    fn workspace_capacity_is_high_water_mark_sticky() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c1", geom(3, 8, 3, 1, 1), false, &mut rng);
        let run = |conv: &mut Conv2d, batch: usize| {
            let x = Act::image(Matrix::zeros(batch, 3 * 6 * 6), 3, 6, 6).unwrap();
            conv.forward(x, Mode::Eval).unwrap();
        };
        run(&mut conv, 4);
        let high_water = conv.patches.capacity();
        assert!(high_water >= 4 * 36 * 27);
        // Shrink the batch: rows drop but the allocation must not.
        run(&mut conv, 1);
        assert_eq!(conv.patches.rows(), 36);
        assert_eq!(conv.patches.capacity(), high_water);
        // Regrow to the original batch: no reallocation.
        run(&mut conv, 4);
        assert_eq!(conv.patches.capacity(), high_water);
    }

    #[test]
    fn workspace_survives_forward_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        // Kernel 3, no padding: a 1×1 input makes im2col_into fail.
        let mut conv = Conv2d::new("c1", geom(3, 8, 3, 1, 0), false, &mut rng);
        let ok = Act::image(Matrix::zeros(2, 3 * 6 * 6), 3, 6, 6).unwrap();
        conv.forward(ok, Mode::Eval).unwrap();
        let high_water = conv.patches.capacity();
        assert!(high_water > 0);
        let bad = Act::image(Matrix::zeros(2, 3), 3, 1, 1).unwrap();
        assert!(conv.forward(bad, Mode::Eval).is_err());
        // The error path must not have dropped the workspace allocation.
        assert_eq!(conv.patches.capacity(), high_water);
        let ok = Act::image(Matrix::zeros(2, 3 * 6 * 6), 3, 6, 6).unwrap();
        conv.forward(ok, Mode::Eval).unwrap();
        assert_eq!(conv.patches.capacity(), high_water);
    }

    #[test]
    fn rejects_channel_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c1", geom(3, 8, 3, 1, 1), false, &mut rng);
        let x = Act::image(Matrix::zeros(1, 2 * 4 * 4), 2, 4, 4).unwrap();
        assert!(conv.forward(x, Mode::Eval).is_err());
    }

    #[test]
    fn identity_1x1_conv_passes_through() {
        let g = geom(2, 2, 1, 1, 0);
        let conv_w = Matrix::eye(2);
        let mut conv = Conv2d::from_weight("id", g, conv_w);
        let x_data = randn_matrix(2, 2 * 3 * 3, 1.0, &mut StdRng::seed_from_u64(1));
        let x = Act::image(x_data.clone(), 2, 3, 3).unwrap();
        let y = conv.forward(x, Mode::Eval).unwrap();
        assert!(y.data().sub(&x_data).unwrap().frobenius_norm() < 1e-5);
    }

    #[test]
    fn gradcheck_conv() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new("c1", geom(2, 3, 3, 1, 1), true, &mut rng);
        let x = randn_matrix(2, 2 * 4 * 4, 1.0, &mut rng);
        let ax = Act::image(x.clone(), 2, 4, 4).unwrap();
        let y = conv.forward(ax, Mode::Train).unwrap();
        let dy = y.clone();
        let dx = conv.backward(dy).unwrap();
        let eps = 1e-2f32;
        let loss = |conv: &mut Conv2d, x: &Matrix| -> f32 {
            let a = Act::image(x.clone(), 2, 4, 4).unwrap();
            let y = conv.forward(a, Mode::Eval).unwrap();
            y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        for (i, j) in [(0usize, 0usize), (1, 17), (0, 31)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let fd = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            let got = dx.data().get(i, j);
            assert!(
                (got - fd).abs() < 2e-2 * fd.abs().max(1.0),
                "dx[{i},{j}]={got} fd={fd}"
            );
        }
    }

    #[test]
    fn weight_gradcheck_conv() {
        // Perturb one unrolled-kernel entry and compare loss delta.
        let g = geom(1, 2, 3, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let w0 = randn_matrix(9, 2, 0.5, &mut rng);
        let x = randn_matrix(1, 16, 1.0, &mut rng);
        let mut conv = Conv2d::from_weight("c", g, w0.clone());
        let y = conv
            .forward(Act::image(x.clone(), 1, 4, 4).unwrap(), Mode::Train)
            .unwrap();
        let _ = conv.backward(y).unwrap();
        let mut grad = None;
        conv.visit_params(&mut |p| {
            if grad.is_none() {
                grad = Some(p.grad.clone());
            }
        });
        let grad = grad.unwrap();
        let eps = 1e-2f32;
        let loss_for = |w: Matrix| -> f32 {
            let mut c = Conv2d::from_weight("c", g, w);
            let y = c
                .forward(Act::image(x.clone(), 1, 4, 4).unwrap(), Mode::Eval)
                .unwrap();
            y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        for (i, j) in [(0usize, 0usize), (4, 1), (8, 0)] {
            let mut wp = w0.clone();
            wp.set(i, j, w0.get(i, j) + eps);
            let mut wm = w0.clone();
            wm.set(i, j, w0.get(i, j) - eps);
            let fd = (loss_for(wp) - loss_for(wm)) / (2.0 * eps);
            assert!(
                (grad.get(i, j) - fd).abs() < 2e-2 * fd.abs().max(1.0),
                "dw[{i},{j}]={} fd={fd}",
                grad.get(i, j)
            );
        }
    }

    #[test]
    fn factorized_conv_matches_full_at_full_rank() {
        let g = geom(2, 4, 3, 1, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new("c", g, false, &mut rng);
        let x = randn_matrix(2, 2 * 5 * 5, 1.0, &mut rng);
        let y_full = conv
            .forward(Act::image(x.clone(), 2, 5, 5).unwrap(), Mode::Eval)
            .unwrap();
        // Factorize at full rank via SVD: output must be unchanged.
        let mut weights = Vec::new();
        conv.visit_weights(&mut |_, w| {
            let dense = w.dense().unwrap().clone();
            weights.push(dense);
        });
        let svd = cuttlefish_tensor::svd::Svd::compute(&weights[0]).unwrap();
        let r = weights[0].full_rank();
        let (u, vt) = svd.split_sqrt(r).unwrap();
        conv.visit_weights(&mut |_, w| {
            w.set_factored(u.clone(), vt.clone(), false, None).unwrap();
        });
        let y_fact = conv
            .forward(Act::image(x, 2, 5, 5).unwrap(), Mode::Eval)
            .unwrap();
        assert!(y_full.data().sub(y_fact.data()).unwrap().frobenius_norm() < 1e-3);
    }
}
