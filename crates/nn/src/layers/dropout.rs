use super::Layer;
use crate::shapecheck::{SymShape, VerifyError};
use crate::{Act, Mode, NnError, NnResult};
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in train mode each element is zeroed with probability
/// `p` and the survivors are scaled by `1/(1−p)`; in eval mode it is the
/// identity. Used by the transformer configurations (the DeiT recipe).
#[derive(Debug)]
pub struct Dropout {
    name: String,
    p: f32,
    rng: StdRng,
    cache_mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// deterministic RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(name: impl Into<String>, p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            name: name.into(),
            p,
            rng: StdRng::seed_from_u64(seed),
            cache_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        if !mode.is_train() || self.p == 0.0 {
            return Ok(x);
        }
        let keep = 1.0 - self.p;
        let mask = Matrix::from_fn(x.data().rows(), x.data().cols(), |_, _| {
            if self.rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.data().hadamard(&mask)?;
        self.cache_mask = Some(mask);
        x.with_data(y)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        match self.cache_mask.take() {
            Some(mask) => {
                let dx = dy.data().hadamard(&mask)?;
                dy.with_data(dx)
            }
            // p == 0 or eval-mode forward: identity.
            None if self.p == 0.0 => Ok(dy),
            None => Err(NnError::MissingCache {
                layer: self.name.clone(),
            }),
        }
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        Ok(*x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("drop", 0.5, 0);
        let x = Act::flat(Matrix::from_fn(4, 8, |i, j| (i * 8 + j) as f32));
        let y = d.forward(x.clone(), Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new("drop", 0.3, 1);
        let x = Act::flat(Matrix::from_fn(64, 64, |_, _| 1.0));
        let y = d.forward(x, Mode::Train).unwrap();
        let mean = y.data().mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Some elements dropped, survivors scaled up.
        let zeros = y.data().as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0);
        let survivor = y
            .data()
            .as_slice()
            .iter()
            .find(|&&v| v != 0.0)
            .copied()
            .unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new("drop", 0.5, 2);
        let x = Act::flat(Matrix::from_fn(4, 4, |_, _| 1.0));
        let y = d.forward(x, Mode::Train).unwrap();
        let dy = Act::flat(Matrix::from_fn(4, 4, |_, _| 1.0));
        let dx = d.backward(dy).unwrap();
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.data().as_slice().iter().zip(dx.data().as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_never_errors() {
        let mut d = Dropout::new("drop", 0.0, 3);
        let x = Act::flat(Matrix::zeros(2, 2));
        let y = d.forward(x, Mode::Train).unwrap();
        let _ = d.backward(y).unwrap();
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new("drop", 1.0, 0);
    }
}
