use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::weight::BatchNormCore;
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;

/// Spatial batch normalization over image activations, normalizing each
/// channel over `(batch, h, w)`.
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    core: BatchNormCore,
    cache_dims: Option<(usize, usize, usize, usize)>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm over `channels` feature maps.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        BatchNorm2d {
            name: name.into(),
            core: BatchNormCore::new(channels),
            cache_dims: None,
        }
    }

    /// Scale parameter γ — exposed because structured-pruning baselines
    /// (EB-Train / network slimming) rank channels by |γ|.
    pub fn gamma(&self) -> &Param {
        &self.core.gamma
    }

    /// Converts `(B, c·h·w)` image data into `(B·h·w, c)` position rows.
    fn image_to_positions(img: &Matrix, c: usize, h: usize, w: usize) -> Matrix {
        let b = img.rows();
        let hw = h * w;
        let mut out = Matrix::zeros(b * hw, c);
        for bi in 0..b {
            let src = img.row(bi);
            for p in 0..hw {
                let dst = out.row_mut(bi * hw + p);
                for (ci, slot) in dst.iter_mut().enumerate() {
                    *slot = src[ci * hw + p];
                }
            }
        }
        out
    }

    /// Inverse of [`BatchNorm2d::image_to_positions`].
    fn positions_to_image(pos: &Matrix, b: usize, c: usize, h: usize, w: usize) -> Matrix {
        let hw = h * w;
        let mut out = Matrix::zeros(b, c * hw);
        for bi in 0..b {
            let dst = out.row_mut(bi);
            for p in 0..hw {
                let src = pos.row(bi * hw + p);
                for ci in 0..c {
                    dst[ci * hw + p] = src[ci];
                }
            }
        }
        out
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (c, h, w) = x.expect_image(&self.name)?;
        if c != self.core.channels() {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("expected {} channels, got {c}", self.core.channels()),
            });
        }
        let b = x.data().rows();
        let pos = Self::image_to_positions(x.data(), c, h, w);
        let y = self.core.forward(&pos, mode)?;
        if mode.is_train() {
            self.cache_dims = Some((b, c, h, w));
        }
        Act::image(Self::positions_to_image(&y, b, c, h, w), c, h, w)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (b, c, h, w) = self
            .cache_dims
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let pos = Self::image_to_positions(dy.data(), c, h, w);
        let dx = self.core.backward(&pos)?;
        Act::image(Self::positions_to_image(&dx, b, c, h, w), c, h, w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.core.visit_params(f);
    }

    fn visit_gammas(&mut self, f: &mut dyn FnMut(&str, &mut Param, &mut Param)) {
        f(&self.name, &mut self.core.gamma, &mut self.core.beta);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Image { channels, .. } = *x else {
            return Err(reject(&self.name, x, "expected an image activation"));
        };
        if channels != self.core.channels() {
            return Err(reject(
                &self.name,
                x,
                format!("expected {} channels, got {channels}", self.core.channels()),
            ));
        }
        Ok(*x)
    }
}

/// Per-row layer normalization with learnable scale/shift, as used by the
/// transformer and mixer models.
#[derive(Debug)]
pub struct LayerNorm {
    name: String,
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug)]
struct LnCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm over rows of width `dim`.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        LayerNorm {
            name: name.into(),
            gamma: Param::new_no_decay(Matrix::from_fn(1, dim, |_, _| 1.0)),
            beta: Param::new_no_decay(Matrix::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let d = self.gamma.value.cols();
        if x.data().cols() != d {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("expected width {d}, got {}", x.data().cols()),
            });
        }
        let n = x.data().rows();
        let mut out = Matrix::zeros(n, d);
        let mut x_hat = Matrix::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        for i in 0..n {
            let row = x.data().row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for (j, &v) in row.iter().enumerate().take(d) {
                let xh = (v - mean) * inv_std;
                x_hat.set(i, j, xh);
                out.set(
                    i,
                    j,
                    self.gamma.value.get(0, j) * xh + self.beta.value.get(0, j),
                );
            }
        }
        if mode.is_train() {
            self.cache = Some(LnCache {
                x_hat,
                inv_std: inv_stds,
            });
        }
        x.with_data(out)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let cache = self.cache.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let d = self.gamma.value.cols();
        let n = dy.data().rows();
        let mut dx = Matrix::zeros(n, d);
        for i in 0..n {
            let dyrow = dy.data().row(i);
            let xrow = cache.x_hat.row(i);
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for j in 0..d {
                let g = self.gamma.value.get(0, j);
                sum_dyg += dyrow[j] * g;
                sum_dyg_xhat += dyrow[j] * g * xrow[j];
                self.gamma
                    .grad
                    .set(0, j, self.gamma.grad.get(0, j) + dyrow[j] * xrow[j]);
                self.beta
                    .grad
                    .set(0, j, self.beta.grad.get(0, j) + dyrow[j]);
            }
            for j in 0..d {
                let g = self.gamma.value.get(0, j);
                let val = cache.inv_std[i] / d as f32
                    * (d as f32 * dyrow[j] * g - sum_dyg - xrow[j] * sum_dyg_xhat);
                dx.set(i, j, val);
            }
        }
        dy.with_data(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let d = self.gamma.value.cols();
        if x.width() != d {
            return Err(reject(
                &self.name,
                x,
                format!("expected width {d}, got {}", x.width()),
            ));
        }
        Ok(*x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bn2d_normalizes_per_channel() {
        let mut bn = BatchNorm2d::new("bn", 2);
        // Channel 0 constant 5, channel 1 ramp.
        let img = Matrix::from_fn(3, 2 * 4, |_, j| if j < 4 { 5.0 } else { j as f32 });
        let x = Act::image(img, 2, 2, 2).unwrap();
        let y = bn.forward(x, Mode::Train).unwrap();
        // Channel 0 was constant ⇒ normalized to ~0 everywhere.
        for b in 0..3 {
            for p in 0..4 {
                assert!(y.data().get(b, p).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn bn2d_gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = randn_matrix(2, 2 * 9, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new("bn", 2);
        let y = bn
            .forward(Act::image(x.clone(), 2, 3, 3).unwrap(), Mode::Train)
            .unwrap();
        let dx = bn.backward(y).unwrap();
        let eps = 1e-2f32;
        for (i, j) in [(0usize, 0usize), (1, 10)] {
            let loss = |x: &Matrix| -> f32 {
                let mut bn = BatchNorm2d::new("bn", 2);
                let y = bn
                    .forward(Act::image(x.clone(), 2, 3, 3).unwrap(), Mode::Train)
                    .unwrap();
                y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
            };
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (dx.data().get(i, j) - fd).abs() < 3e-2 * fd.abs().max(1.0),
                "dx[{i},{j}]={} fd={fd}",
                dx.data().get(i, j)
            );
        }
    }

    #[test]
    fn layernorm_rows_standardized() {
        let mut ln = LayerNorm::new("ln", 4);
        let x = Act::flat(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap());
        let y = ln.forward(x, Mode::Eval).unwrap();
        let row = y.data().row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn_matrix(3, 5, 1.0, &mut rng);
        let mut ln = LayerNorm::new("ln", 5);
        ln.gamma.value.set(0, 2, 1.7);
        let y = ln.forward(Act::flat(x.clone()), Mode::Train).unwrap();
        let dx = ln.backward(y).unwrap();
        let eps = 1e-2f32;
        for (i, j) in [(0usize, 0usize), (2, 4)] {
            let loss = |x: &Matrix| -> f32 {
                let mut ln = LayerNorm::new("ln", 5);
                ln.gamma.value.set(0, 2, 1.7);
                let y = ln.forward(Act::flat(x.clone()), Mode::Eval).unwrap();
                y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
            };
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (dx.data().get(i, j) - fd).abs() < 3e-2 * fd.abs().max(1.0),
                "dx[{i},{j}]={} fd={fd}",
                dx.data().get(i, j)
            );
        }
    }

    #[test]
    fn bn2d_rejects_flat() {
        let mut bn = BatchNorm2d::new("bn", 2);
        assert!(bn
            .forward(Act::flat(Matrix::zeros(1, 8)), Mode::Eval)
            .is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut bn = BatchNorm2d::new("bn", 1);
        assert!(bn
            .backward(Act::image(Matrix::zeros(1, 4), 1, 2, 2).unwrap())
            .is_err());
        let mut ln = LayerNorm::new("ln", 4);
        assert!(ln.backward(Act::flat(Matrix::zeros(1, 4))).is_err());
    }
}
