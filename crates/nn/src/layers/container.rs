use super::{BoxedLayer, Layer};
use crate::shapecheck::{SymShape, VerifyError};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnResult, Param};

/// A chain of layers executed in order.
#[derive(Debug)]
pub struct Sequential {
    name: String,
    layers: Vec<BoxedLayer>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer, builder-style.
    #[must_use]
    pub fn push(mut self, layer: impl Layer + Send + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: BoxedLayer) {
        self.layers.push(layer);
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, mut x: Act, mode: Mode) -> NnResult<Act> {
        for layer in &mut self.layers {
            // Labels poison reports under `--features checked`; no-op otherwise.
            cuttlefish_tensor::checked::set_label(layer.name());
            x = layer.forward(x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, mut dy: Act) -> NnResult<Act> {
        for layer in self.layers.iter_mut().rev() {
            cuttlefish_tensor::checked::set_label(layer.name());
            dy = layer.backward(dy)?;
        }
        Ok(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_named(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_named(f);
        }
    }

    fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        for layer in &mut self.layers {
            layer.visit_weights(f);
        }
    }

    fn visit_gammas(&mut self, f: &mut dyn FnMut(&str, &mut Param, &mut Param)) {
        for layer in &mut self.layers {
            layer.visit_gammas(f);
        }
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let mut shape = *x;
        for layer in &self.layers {
            shape = layer.infer_shape(&shape)?;
        }
        Ok(shape)
    }
}

/// A residual connection: `y = body(x) + shortcut(x)` with an identity
/// shortcut by default. Backward splits the incoming gradient between the
/// two paths, matching the ResNet/Transformer skip pattern.
#[derive(Debug)]
pub struct Residual {
    name: String,
    body: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(name: impl Into<String>, body: Sequential) -> Self {
        Residual {
            name: name.into(),
            body,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut (e.g. the
    /// strided 1×1 conv + BN used when a ResNet stack changes width).
    pub fn with_shortcut(name: impl Into<String>, body: Sequential, shortcut: Sequential) -> Self {
        Residual {
            name: name.into(),
            body,
            shortcut: Some(shortcut),
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x.clone(), mode)?,
            None => x.clone(),
        };
        let y = self.body.forward(x, mode)?;
        let sum = y.data().add(skip.data())?;
        y.with_data(sum)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let d_body = self.body.backward(dy.clone())?;
        let d_skip = match &mut self.shortcut {
            Some(s) => s.backward(dy)?,
            None => dy,
        };
        let dx = d_body.data().add(d_skip.data())?;
        d_body.with_data(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_params_named(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.body.visit_params_named(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params_named(f);
        }
    }

    fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        self.body.visit_weights(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_weights(f);
        }
    }

    fn visit_gammas(&mut self, f: &mut dyn FnMut(&str, &mut Param, &mut Param)) {
        self.body.visit_gammas(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_gammas(f);
        }
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let body = self.body.infer_shape(x)?;
        let skip = match &self.shortcut {
            Some(s) => s.infer_shape(x)?,
            None => *x,
        };
        if body != skip {
            return Err(crate::shapecheck::reject(
                &self.name,
                x,
                format!("body yields {body} but shortcut yields {skip}; the residual sum needs equal shapes"),
            ));
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use cuttlefish_tensor::init::randn_matrix;
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seq = Sequential::new("net")
            .push(Linear::new("fc1", 4, 8, true, &mut rng))
            .push(Relu::new("relu"))
            .push(Linear::new("fc2", 8, 2, true, &mut rng));
        assert_eq!(seq.len(), 3);
        let y = seq
            .forward(Act::flat(Matrix::zeros(3, 4)), Mode::Eval)
            .unwrap();
        assert_eq!(y.data().shape(), (3, 2));
    }

    #[test]
    fn sequential_backward_reverses() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = Sequential::new("net")
            .push(Linear::new("fc1", 3, 5, false, &mut rng))
            .push(Relu::new("relu"));
        let x = randn_matrix(2, 3, 1.0, &mut rng);
        let y = seq.forward(Act::flat(x), Mode::Train).unwrap();
        let dx = seq.backward(y).unwrap();
        assert_eq!(dx.data().shape(), (2, 3));
    }

    #[test]
    fn residual_identity_adds_input() {
        // Body = zero-weight linear ⇒ output == input.
        let body =
            Sequential::new("body").push(Linear::from_weight("z", Matrix::zeros(4, 4), false));
        let mut res = Residual::new("res", body);
        let x = randn_matrix(2, 4, 1.0, &mut StdRng::seed_from_u64(2));
        let y = res.forward(Act::flat(x.clone()), Mode::Eval).unwrap();
        assert!(y.data().sub(&x).unwrap().frobenius_norm() < 1e-6);
    }

    #[test]
    fn residual_backward_sums_paths() {
        // Body = identity linear ⇒ dx = 2·dy.
        let body = Sequential::new("body").push(Linear::from_weight("i", Matrix::eye(3), false));
        let mut res = Residual::new("res", body);
        let x = randn_matrix(2, 3, 1.0, &mut StdRng::seed_from_u64(3));
        let _ = res.forward(Act::flat(x), Mode::Train).unwrap();
        let dy = Matrix::from_fn(2, 3, |_, _| 1.0);
        let dx = res.backward(Act::flat(dy)).unwrap();
        for v in dx.data().as_slice() {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn residual_projection_shortcut() {
        let mut rng = StdRng::seed_from_u64(4);
        let body = Sequential::new("body").push(Linear::new("fc", 4, 6, false, &mut rng));
        let shortcut = Sequential::new("short").push(Linear::new("proj", 4, 6, false, &mut rng));
        let mut res = Residual::with_shortcut("res", body, shortcut);
        let y = res
            .forward(Act::flat(Matrix::zeros(2, 4)), Mode::Train)
            .unwrap();
        assert_eq!(y.data().shape(), (2, 6));
        let dx = res.backward(Act::flat(Matrix::zeros(2, 6))).unwrap();
        assert_eq!(dx.data().shape(), (2, 4));
    }

    #[test]
    fn visit_weights_recurses() {
        let mut rng = StdRng::seed_from_u64(5);
        let body = Sequential::new("body").push(Linear::new("a", 2, 2, false, &mut rng));
        let shortcut = Sequential::new("short").push(Linear::new("b", 2, 2, false, &mut rng));
        let mut res = Residual::with_shortcut("res", body, shortcut);
        let mut names = Vec::new();
        res.visit_weights(&mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["a", "b"]);
    }
}
