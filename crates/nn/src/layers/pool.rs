use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::{Act, Mode, NnError, NnResult};
use cuttlefish_tensor::Matrix;

/// Max pooling over image activations with square kernel and stride.
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    kernel: usize,
    stride: usize,
    /// (b, c, h, w, oh, ow, argmax indices into the input image row).
    #[allow(clippy::type_complexity)]
    cache: Option<(usize, usize, usize, usize, usize, usize, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        MaxPool2d {
            name: name.into(),
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (c, h, w) = x.expect_image(&self.name)?;
        if h < self.kernel || w < self.kernel {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("{h}x{w} input smaller than {0}x{0} kernel", self.kernel),
            });
        }
        let b = x.data().rows();
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Matrix::zeros(b, c * oh * ow);
        let mut argmax = vec![0usize; b * c * oh * ow];
        for bi in 0..b {
            let src = x.data().row(bi);
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = ci * h * w + iy * w + ix;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ci * oh * ow + oy * ow + ox;
                        out.set(bi, oidx, best);
                        argmax[bi * c * oh * ow + oidx] = best_idx;
                    }
                }
            }
        }
        if mode.is_train() {
            self.cache = Some((b, c, h, w, oh, ow, argmax));
        }
        Act::image(out, c, oh, ow)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (b, c, h, w, oh, ow, argmax) =
            self.cache.take().ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let mut dx = Matrix::zeros(b, c * h * w);
        for bi in 0..b {
            let drow = dy.data().row(bi);
            let dst = dx.row_mut(bi);
            for oidx in 0..c * oh * ow {
                dst[argmax[bi * c * oh * ow + oidx]] += drow[oidx];
            }
        }
        Act::image(dx, c, h, w)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Image {
            channels,
            height,
            width,
        } = *x
        else {
            return Err(reject(&self.name, x, "expected an image activation"));
        };
        if height < self.kernel || width < self.kernel {
            return Err(reject(
                &self.name,
                x,
                format!(
                    "{height}x{width} input smaller than {0}x{0} kernel",
                    self.kernel
                ),
            ));
        }
        Ok(SymShape::Image {
            channels,
            height: (height - self.kernel) / self.stride + 1,
            width: (width - self.kernel) / self.stride + 1,
        })
    }
}

/// Global average pooling: image `(B, C·H·W)` → flat `(B, C)`.
#[derive(Debug)]
pub struct GlobalAvgPool {
    name: String,
    cache_dims: Option<(usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// Creates a global average pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool {
            name: name.into(),
            cache_dims: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (c, h, w) = x.expect_image(&self.name)?;
        let b = x.data().rows();
        let hw = (h * w) as f32;
        let mut out = Matrix::zeros(b, c);
        for bi in 0..b {
            let src = x.data().row(bi);
            for ci in 0..c {
                let sum: f32 = src[ci * h * w..(ci + 1) * h * w].iter().sum();
                out.set(bi, ci, sum / hw);
            }
        }
        if mode.is_train() {
            self.cache_dims = Some((c, h, w));
        }
        Ok(Act::flat(out))
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (c, h, w) = self
            .cache_dims
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let b = dy.data().rows();
        let hw = (h * w) as f32;
        let mut dx = Matrix::zeros(b, c * h * w);
        for bi in 0..b {
            let drow = dy.data().row(bi);
            let dst = dx.row_mut(bi);
            for ci in 0..c {
                let g = drow[ci] / hw;
                for p in 0..h * w {
                    dst[ci * h * w + p] = g;
                }
            }
        }
        Act::image(dx, c, h, w)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Image { channels, .. } = *x else {
            return Err(reject(&self.name, x, "expected an image activation"));
        };
        Ok(SymShape::Flat { features: channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_max() {
        let mut p = MaxPool2d::new("mp", 2, 2);
        // 1 channel 4x4 ramp.
        let img = Matrix::from_fn(1, 16, |_, j| j as f32);
        let y = p
            .forward(Act::image(img, 1, 4, 4).unwrap(), Mode::Eval)
            .unwrap();
        assert_eq!(y.expect_image("t").unwrap(), (1, 2, 2));
        assert_eq!(y.data().row(0), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new("mp", 2, 2);
        let img = Matrix::from_fn(1, 16, |_, j| j as f32);
        let _ = p
            .forward(Act::image(img, 1, 4, 4).unwrap(), Mode::Train)
            .unwrap();
        let dy = Matrix::from_fn(1, 4, |_, j| (j + 1) as f32);
        let dx = p.backward(Act::image(dy, 1, 2, 2).unwrap()).unwrap();
        // Gradient lands only at positions 5, 7, 13, 15.
        let row = dx.data().row(0);
        assert_eq!(row[5], 1.0);
        assert_eq!(row[7], 2.0);
        assert_eq!(row[13], 3.0);
        assert_eq!(row[15], 4.0);
        assert_eq!(row.iter().sum::<f32>(), 10.0);
    }

    #[test]
    fn maxpool_rejects_small_input() {
        let mut p = MaxPool2d::new("mp", 3, 3);
        let img = Matrix::zeros(1, 4);
        assert!(p
            .forward(Act::image(img, 1, 2, 2).unwrap(), Mode::Eval)
            .is_err());
    }

    #[test]
    fn gap_means_channels() {
        let mut g = GlobalAvgPool::new("gap");
        let img = Matrix::from_fn(2, 2 * 4, |_, j| if j < 4 { 2.0 } else { 6.0 });
        let y = g
            .forward(Act::image(img, 2, 2, 2).unwrap(), Mode::Eval)
            .unwrap();
        assert_eq!(y.data().shape(), (2, 2));
        assert_eq!(y.data().get(0, 0), 2.0);
        assert_eq!(y.data().get(1, 1), 6.0);
    }

    #[test]
    fn gap_backward_broadcasts() {
        let mut g = GlobalAvgPool::new("gap");
        let img = Matrix::zeros(1, 8);
        let _ = g
            .forward(Act::image(img, 2, 2, 2).unwrap(), Mode::Train)
            .unwrap();
        let dy = Matrix::from_rows(&[vec![4.0, 8.0]]).unwrap();
        let dx = g.backward(Act::flat(dy)).unwrap();
        assert_eq!(dx.data().row(0)[..4], [1.0, 1.0, 1.0, 1.0]);
        assert_eq!(dx.data().row(0)[4..], [2.0, 2.0, 2.0, 2.0]);
    }
}
