use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;
use rand::Rng;

/// Token embedding lookup: flat `(B, T)` matrices of token ids (stored as
/// `f32`, exact for any realistic vocabulary) → sequence `(B·T, D)`.
///
/// The paper never factorizes embedding layers ("we consistently factorize
/// all Transformer layers **except** for the word/image sequence embedding
/// layers", §3.5), so the table is a plain [`Param`].
#[derive(Debug)]
pub struct Embedding {
    name: String,
    table: Param,
    cache_ids: Option<Vec<usize>>,
    cache_bt: Option<(usize, usize)>,
}

impl Embedding {
    /// Creates an embedding of `vocab` rows and `dim` columns, `N(0, 0.02²)`
    /// initialized (the BERT convention).
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = cuttlefish_tensor::init::randn_matrix(vocab, dim, 0.02, rng);
        Embedding {
            name: name.into(),
            table: Param::new_no_decay(table),
            cache_ids: None,
            cache_bt: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }
}

impl Layer for Embedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (b, t) = (x.data().rows(), x.data().cols());
        let d = self.table.value.cols();
        let vocab = self.vocab();
        let mut ids = Vec::with_capacity(b * t);
        let mut out = Matrix::zeros(b * t, d);
        for bi in 0..b {
            let row = x.data().row(bi);
            for (ti, &raw) in row.iter().enumerate() {
                let id = raw as usize;
                if raw < 0.0 || id >= vocab {
                    return Err(NnError::BadActivation {
                        layer: self.name.clone(),
                        detail: format!("token id {raw} out of vocab 0..{vocab}"),
                    });
                }
                ids.push(id);
                out.row_mut(bi * t + ti)
                    .copy_from_slice(self.table.value.row(id));
            }
        }
        if mode.is_train() {
            self.cache_ids = Some(ids);
            self.cache_bt = Some((b, t));
        }
        Act::seq(out, b, t)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let ids = self.cache_ids.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let (b, t) = self.cache_bt.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let d = self.table.value.cols();
        for (pos, &id) in ids.iter().enumerate() {
            let src = dy.data().row(pos);
            for (j, &v) in src.iter().enumerate().take(d) {
                let cur = self.table.grad.get(id, j);
                self.table.grad.set(id, j, cur + v);
            }
        }
        // Token ids are not differentiable; return a zero gradient.
        Ok(Act::flat(Matrix::zeros(b, t)))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        // Runtime `forward` reads any matrix as `(B, T)` ids, but only flat
        // activations are meaningful token-id batches — the checker insists.
        let SymShape::Flat { features } = *x else {
            return Err(reject(&self.name, x, "expected a flat token-id matrix"));
        };
        Ok(SymShape::Seq {
            tokens: features,
            dim: self.table.value.cols(),
        })
    }
}

/// Learned positional embedding added per token index.
#[derive(Debug)]
pub struct PosEmbedding {
    name: String,
    table: Param,
    cache_bt: Option<(usize, usize)>,
}

impl PosEmbedding {
    /// Creates positional embeddings for up to `max_tokens` positions.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        max_tokens: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = cuttlefish_tensor::init::randn_matrix(max_tokens, dim, 0.02, rng);
        PosEmbedding {
            name: name.into(),
            table: Param::new_no_decay(table),
            cache_bt: None,
        }
    }
}

impl Layer for PosEmbedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (b, t) = x.expect_seq(&self.name)?;
        if t > self.table.value.rows() {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!(
                    "sequence of {t} tokens exceeds max {}",
                    self.table.value.rows()
                ),
            });
        }
        let d = x.data().cols();
        if d != self.table.value.cols() {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("dim {d} != embedding dim {}", self.table.value.cols()),
            });
        }
        let mut out = x.data().clone();
        for bi in 0..b {
            for ti in 0..t {
                let dst = out.row_mut(bi * t + ti);
                let pos = self.table.value.row(ti);
                for j in 0..d {
                    dst[j] += pos[j];
                }
            }
        }
        if mode.is_train() {
            self.cache_bt = Some((b, t));
        }
        x.with_data(out)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (b, t) = self.cache_bt.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let d = dy.data().cols();
        for bi in 0..b {
            for ti in 0..t {
                let src = dy.data().row(bi * t + ti);
                for (j, &v) in src.iter().enumerate().take(d) {
                    let cur = self.table.grad.get(ti, j);
                    self.table.grad.set(ti, j, cur + v);
                }
            }
        }
        Ok(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Seq { tokens, dim } = *x else {
            return Err(reject(&self.name, x, "expected a sequence activation"));
        };
        if tokens > self.table.value.rows() {
            return Err(reject(
                &self.name,
                x,
                format!(
                    "sequence of {tokens} tokens exceeds max {}",
                    self.table.value.rows()
                ),
            ));
        }
        if dim != self.table.value.cols() {
            return Err(reject(
                &self.name,
                x,
                format!("dim {dim} != embedding dim {}", self.table.value.cols()),
            ));
        }
        Ok(*x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embedding_lookup() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new("emb", 10, 4, &mut rng);
        let ids = Matrix::from_rows(&[vec![0.0, 3.0], vec![9.0, 3.0]]).unwrap();
        let y = emb.forward(Act::flat(ids), Mode::Eval).unwrap();
        assert_eq!(y.expect_seq("t").unwrap(), (2, 2));
        // Rows 1 and 3 are both id 3 → identical embeddings.
        assert_eq!(y.data().row(1), y.data().row(3));
    }

    #[test]
    fn embedding_rejects_out_of_vocab() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new("emb", 4, 2, &mut rng);
        let ids = Matrix::from_rows(&[vec![4.0]]).unwrap();
        assert!(emb.forward(Act::flat(ids), Mode::Eval).is_err());
        let neg = Matrix::from_rows(&[vec![-1.0]]).unwrap();
        assert!(emb.forward(Act::flat(neg), Mode::Eval).is_err());
    }

    #[test]
    fn embedding_backward_scatter_adds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new("emb", 5, 2, &mut rng);
        let ids = Matrix::from_rows(&[vec![2.0, 2.0]]).unwrap();
        let _ = emb.forward(Act::flat(ids), Mode::Train).unwrap();
        let dy = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let _ = emb.backward(Act::seq(dy, 1, 2).unwrap()).unwrap();
        // Both tokens hit row 2 → accumulated gradient 2.0.
        assert_eq!(emb.table.grad.get(2, 0), 2.0);
        assert_eq!(emb.table.grad.get(0, 0), 0.0);
    }

    #[test]
    fn pos_embedding_adds_per_position() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pe = PosEmbedding::new("pos", 4, 3, &mut rng);
        let x = Act::seq(Matrix::zeros(4, 3), 2, 2).unwrap();
        let y = pe.forward(x, Mode::Train).unwrap();
        // Same position in both sequences gets the same offset.
        assert_eq!(y.data().row(0), y.data().row(2));
        assert_ne!(y.data().row(0), y.data().row(1));
        // Backward accumulates per-position gradients across the batch.
        let dy = Matrix::from_fn(4, 3, |_, _| 1.0);
        let _ = pe.backward(Act::seq(dy, 2, 2).unwrap()).unwrap();
        assert_eq!(pe.table.grad.get(0, 0), 2.0);
        assert_eq!(pe.table.grad.get(3, 0), 0.0);
    }

    #[test]
    fn pos_embedding_rejects_long_sequence() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pe = PosEmbedding::new("pos", 2, 3, &mut rng);
        let x = Act::seq(Matrix::zeros(6, 3), 2, 3).unwrap();
        assert!(pe.forward(x, Mode::Eval).is_err());
    }
}
