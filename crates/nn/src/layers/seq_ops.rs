use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::{Act, Mode, NnError, NnResult};
use cuttlefish_tensor::Matrix;

/// Converts an image activation into a token sequence: each spatial
/// position becomes one token with `channels` features — the reshape half
/// of a transformer/mixer patch-embedding (the conv half is a strided
/// [`super::Conv2d`]).
#[derive(Debug)]
pub struct ImageToSeq {
    name: String,
    cache_dims: Option<(usize, usize, usize)>,
}

impl ImageToSeq {
    /// Creates the reshape layer.
    pub fn new(name: impl Into<String>) -> Self {
        ImageToSeq {
            name: name.into(),
            cache_dims: None,
        }
    }
}

impl Layer for ImageToSeq {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (c, h, w) = x.expect_image(&self.name)?;
        let b = x.data().rows();
        let tokens = h * w;
        let mut out = Matrix::zeros(b * tokens, c);
        for bi in 0..b {
            let src = x.data().row(bi);
            for t in 0..tokens {
                let dst = out.row_mut(bi * tokens + t);
                for (ci, slot) in dst.iter_mut().enumerate() {
                    *slot = src[ci * tokens + t];
                }
            }
        }
        if mode.is_train() {
            self.cache_dims = Some((c, h, w));
        }
        Act::seq(out, b, tokens)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let (c, h, w) = self
            .cache_dims
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let (b, tokens) = dy.expect_seq(&self.name)?;
        let mut dx = Matrix::zeros(b, c * h * w);
        for bi in 0..b {
            let dst = dx.row_mut(bi);
            for t in 0..tokens {
                let src = dy.data().row(bi * tokens + t);
                for ci in 0..c {
                    dst[ci * tokens + t] = src[ci];
                }
            }
        }
        Act::image(dx, c, h, w)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Image {
            channels,
            height,
            width,
        } = *x
        else {
            return Err(reject(&self.name, x, "expected an image activation"));
        };
        Ok(SymShape::Seq {
            tokens: height * width,
            dim: channels,
        })
    }
}

/// Transposes tokens and channels per sequence: `(B, T, D) → (B, D, T)`.
///
/// Used by the MLP-Mixer/ResMLP token-mixing sublayer: a [`super::Linear`]
/// applied after this transpose mixes information *across tokens*.
#[derive(Debug)]
pub struct TokenTranspose {
    name: String,
}

impl TokenTranspose {
    /// Creates the transpose layer.
    pub fn new(name: impl Into<String>) -> Self {
        TokenTranspose { name: name.into() }
    }

    fn apply(&self, x: &Act) -> NnResult<Act> {
        let (b, tokens) = x.expect_seq(&self.name)?;
        let d = x.data().cols();
        let mut out = Matrix::zeros(b * d, tokens);
        for bi in 0..b {
            for t in 0..tokens {
                let src = x.data().row(bi * tokens + t);
                for (di, &v) in src.iter().enumerate().take(d) {
                    out.set(bi * d + di, t, v);
                }
            }
        }
        Act::seq(out, b, d)
    }
}

impl Layer for TokenTranspose {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, _mode: Mode) -> NnResult<Act> {
        self.apply(&x)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        // The transpose is an involution; its adjoint is itself.
        self.apply(&dy)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Seq { tokens, dim } = *x else {
            return Err(reject(&self.name, x, "expected a sequence activation"));
        };
        Ok(SymShape::Seq {
            tokens: dim,
            dim: tokens,
        })
    }
}

/// Mean-pools a sequence over tokens: `(B·T, D) → (B, D)`.
#[derive(Debug)]
pub struct SeqMeanPool {
    name: String,
    cache_tokens: Option<usize>,
}

impl SeqMeanPool {
    /// Creates the pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        SeqMeanPool {
            name: name.into(),
            cache_tokens: None,
        }
    }
}

impl Layer for SeqMeanPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (b, tokens) = x.expect_seq(&self.name)?;
        let d = x.data().cols();
        let mut out = Matrix::zeros(b, d);
        for bi in 0..b {
            for t in 0..tokens {
                let src = x.data().row(bi * tokens + t);
                let dst = out.row_mut(bi);
                for j in 0..d {
                    dst[j] += src[j] / tokens as f32;
                }
            }
        }
        if mode.is_train() {
            self.cache_tokens = Some(tokens);
        }
        Ok(Act::flat(out))
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let tokens = self
            .cache_tokens
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let b = dy.data().rows();
        let d = dy.data().cols();
        let mut dx = Matrix::zeros(b * tokens, d);
        for bi in 0..b {
            let src = dy.data().row(bi);
            for t in 0..tokens {
                let dst = dx.row_mut(bi * tokens + t);
                for j in 0..d {
                    dst[j] = src[j] / tokens as f32;
                }
            }
        }
        Act::seq(dx, b, tokens)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Seq { dim, .. } = *x else {
            return Err(reject(&self.name, x, "expected a sequence activation"));
        };
        Ok(SymShape::Flat { features: dim })
    }
}

/// Selects a single token per sequence (e.g. the `[CLS]` token for BERT
/// classification heads): `(B·T, D) → (B, D)`.
#[derive(Debug)]
pub struct TakeToken {
    name: String,
    index: usize,
    cache_tokens: Option<usize>,
}

impl TakeToken {
    /// Creates a layer selecting token `index`.
    pub fn new(name: impl Into<String>, index: usize) -> Self {
        TakeToken {
            name: name.into(),
            index,
            cache_tokens: None,
        }
    }
}

impl Layer for TakeToken {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (b, tokens) = x.expect_seq(&self.name)?;
        if self.index >= tokens {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("token index {} out of range 0..{tokens}", self.index),
            });
        }
        let d = x.data().cols();
        let mut out = Matrix::zeros(b, d);
        for bi in 0..b {
            out.row_mut(bi)
                .copy_from_slice(x.data().row(bi * tokens + self.index));
        }
        if mode.is_train() {
            self.cache_tokens = Some(tokens);
        }
        Ok(Act::flat(out))
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let tokens = self
            .cache_tokens
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let b = dy.data().rows();
        let d = dy.data().cols();
        let mut dx = Matrix::zeros(b * tokens, d);
        for bi in 0..b {
            dx.row_mut(bi * tokens + self.index)
                .copy_from_slice(dy.data().row(bi));
        }
        Act::seq(dx, b, tokens)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Seq { tokens, dim } = *x else {
            return Err(reject(&self.name, x, "expected a sequence activation"));
        };
        if self.index >= tokens {
            return Err(reject(
                &self.name,
                x,
                format!("token index {} out of range 0..{tokens}", self.index),
            ));
        }
        Ok(SymShape::Flat { features: dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_to_seq_roundtrip() {
        let img = Matrix::from_fn(2, 3 * 4, |i, j| (i * 100 + j) as f32);
        let mut l = ImageToSeq::new("i2s");
        let seq = l
            .forward(Act::image(img.clone(), 3, 2, 2).unwrap(), Mode::Train)
            .unwrap();
        assert_eq!(seq.expect_seq("t").unwrap(), (2, 4));
        assert_eq!(seq.data().shape(), (8, 3));
        // Token 0 of batch 0 = channel values at position 0: 0, 4, 8.
        assert_eq!(seq.data().row(0), &[0.0, 4.0, 8.0]);
        // Backward of the forward output returns the original image.
        let back = l.backward(seq).unwrap();
        assert_eq!(back.data(), &img);
    }

    #[test]
    fn token_transpose_involution() {
        let data = Matrix::from_fn(6, 4, |i, j| (i * 10 + j) as f32);
        let x = Act::seq(data.clone(), 2, 3).unwrap();
        let mut t = TokenTranspose::new("tt");
        let y = t.forward(x, Mode::Train).unwrap();
        assert_eq!(y.expect_seq("t").unwrap(), (2, 4));
        assert_eq!(y.data().shape(), (8, 3));
        let back = t.backward(y).unwrap();
        assert_eq!(back.data(), &data);
    }

    #[test]
    fn seq_mean_pool_averages() {
        let data = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![10.0, 20.0],
            vec![30.0, 40.0],
        ])
        .unwrap();
        let x = Act::seq(data, 2, 2).unwrap();
        let mut p = SeqMeanPool::new("pool");
        let y = p.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().row(0), &[2.0, 3.0]);
        assert_eq!(y.data().row(1), &[20.0, 30.0]);
        let dx = p
            .backward(Act::flat(
                Matrix::from_rows(&[vec![2.0, 2.0], vec![4.0, 4.0]]).unwrap(),
            ))
            .unwrap();
        assert_eq!(dx.data().row(0), &[1.0, 1.0]);
        assert_eq!(dx.data().row(3), &[2.0, 2.0]);
    }

    #[test]
    fn take_token_selects_and_scatters() {
        let data = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32);
        let x = Act::seq(data, 2, 2).unwrap();
        let mut t = TakeToken::new("cls", 0);
        let y = t.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().row(0), &[0.0, 1.0]);
        assert_eq!(y.data().row(1), &[4.0, 5.0]);
        let dx = t
            .backward(Act::flat(
                Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap(),
            ))
            .unwrap();
        assert_eq!(dx.data().row(0), &[1.0, 1.0]);
        assert_eq!(dx.data().row(1), &[0.0, 0.0]);
        assert_eq!(dx.data().row(2), &[2.0, 2.0]);
    }

    #[test]
    fn take_token_rejects_out_of_range() {
        let x = Act::seq(Matrix::zeros(4, 2), 2, 2).unwrap();
        let mut t = TakeToken::new("cls", 5);
        assert!(t.forward(x, Mode::Eval).is_err());
    }
}
