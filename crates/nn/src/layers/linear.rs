use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;
use rand::Rng;

/// A fully-connected layer `y = x·W (+ b)` over flat or sequence
/// activations, with a factorable weight.
#[derive(Debug)]
pub struct Linear {
    name: String,
    weight: FactorableWeight,
    bias: Option<Param>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = cuttlefish_tensor::init::kaiming_linear(in_dim, out_dim, rng);
        Linear {
            name: name.into(),
            weight: FactorableWeight::new_full(w),
            bias: bias.then(|| Param::new_no_decay(Matrix::zeros(1, out_dim))),
        }
    }

    /// Creates a linear layer from an explicit weight matrix (tests,
    /// baselines).
    pub fn from_weight(name: impl Into<String>, w: Matrix, bias: bool) -> Self {
        let out_dim = w.cols();
        Linear {
            name: name.into(),
            weight: FactorableWeight::new_full(w),
            bias: bias.then(|| Param::new_no_decay(Matrix::zeros(1, out_dim))),
        }
    }

    /// The factorable weight (for direct inspection in tests).
    pub fn weight(&self) -> &FactorableWeight {
        &self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        if x.data().cols() != self.weight.in_dim() {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!(
                    "expected {} input features, got {}",
                    self.weight.in_dim(),
                    x.data().cols()
                ),
            });
        }
        let mut y = self.weight.forward(x.data(), mode)?;
        if let Some(b) = &self.bias {
            for i in 0..y.rows() {
                let row = y.row_mut(i);
                for (j, v) in row.iter_mut().enumerate() {
                    *v += b.value.get(0, j);
                }
            }
        }
        x.with_data(y)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        if let Some(b) = &mut self.bias {
            for i in 0..dy.data().rows() {
                let row = dy.data().row(i);
                for (j, &v) in row.iter().enumerate() {
                    b.grad.set(0, j, b.grad.get(0, j) + v);
                }
            }
        }
        let dx = self.weight.backward(dy.data())?;
        dy.with_data(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.weight.visit_params(f);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        f(&self.name, &mut self.weight);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let (in_dim, out_dim) = (self.weight.in_dim(), self.weight.out_dim());
        if x.width() != in_dim {
            return Err(reject(
                &self.name,
                x,
                format!("expected {in_dim} input features, got {}", x.width()),
            ));
        }
        match *x {
            SymShape::Flat { .. } => Ok(SymShape::Flat { features: out_dim }),
            SymShape::Seq { tokens, .. } => Ok(SymShape::Seq {
                tokens,
                dim: out_dim,
            }),
            // Runtime `with_data` would re-tag the output as the same image,
            // which only type-checks when the width is preserved.
            SymShape::Image { .. } if out_dim == in_dim => Ok(*x),
            SymShape::Image { .. } => Err(reject(
                &self.name,
                x,
                format!("output width {out_dim} cannot keep the input's image shape"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_flat_and_seq() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("fc", 4, 6, true, &mut rng);
        let flat = Act::flat(Matrix::zeros(3, 4));
        assert_eq!(l.forward(flat, Mode::Eval).unwrap().data().shape(), (3, 6));
        let seq = Act::seq(Matrix::zeros(6, 4), 2, 3).unwrap();
        let out = l.forward(seq, Mode::Eval).unwrap();
        assert_eq!(out.data().shape(), (6, 6));
        assert_eq!(out.expect_seq("t").unwrap(), (2, 3));
    }

    #[test]
    fn rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("fc", 4, 6, false, &mut rng);
        assert!(l
            .forward(Act::flat(Matrix::zeros(3, 5)), Mode::Eval)
            .is_err());
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("fc", 3, 2, true, &mut rng);
        let x = randn_matrix(4, 3, 1.0, &mut rng);
        let _ = l.forward(Act::flat(x), Mode::Train).unwrap();
        let dy = Matrix::from_fn(4, 2, |i, j| (i + j) as f32);
        let _ = l.backward(Act::flat(dy.clone())).unwrap();
        let mut grads = Vec::new();
        l.visit_params(&mut |p| grads.push(p.grad.clone()));
        let bias_grad = grads.last().unwrap();
        for j in 0..2 {
            let expect: f32 = (0..4).map(|i| dy.get(i, j)).sum();
            assert!((bias_grad.get(0, j) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn gradcheck_linear() {
        // L = Σ y²/2; compare analytic dx against finite differences.
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new("fc", 3, 2, true, &mut rng);
        let x = randn_matrix(2, 3, 1.0, &mut rng);
        let y = l.forward(Act::flat(x.clone()), Mode::Train).unwrap();
        let dy = y.data().clone();
        let dx = l.backward(Act::flat(dy)).unwrap();
        let eps = 1e-2f32;
        for (i, j) in [(0usize, 0usize), (1, 2)] {
            let loss = |l: &mut Linear, x: &Matrix| -> f32 {
                let y = l.forward(Act::flat(x.clone()), Mode::Eval).unwrap();
                y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
            };
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let fd = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
            assert!(
                (dx.data().get(i, j) - fd).abs() < 1e-2 * fd.abs().max(1.0),
                "dx[{i},{j}]={} fd={}",
                dx.data().get(i, j),
                fd
            );
        }
    }

    #[test]
    fn visit_weights_exposes_name() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new("classifier", 4, 4, false, &mut rng);
        let mut names = Vec::new();
        l.visit_weights(&mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["classifier"]);
    }
}
