use super::Layer;
use crate::shapecheck::{SymShape, VerifyError};
use crate::{Act, Mode, NnError, NnResult};
use cuttlefish_tensor::Matrix;

/// Rectified linear unit.
#[derive(Debug)]
pub struct Relu {
    name: String,
    cache_mask: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Relu {
            name: name.into(),
            cache_mask: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let y = x.data().map(|v| v.max(0.0));
        if mode.is_train() {
            self.cache_mask = Some(x.data().map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        }
        x.with_data(y)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let mask = self
            .cache_mask
            .take()
            .ok_or_else(|| NnError::MissingCache {
                layer: self.name.clone(),
            })?;
        let dx = dy.data().hadamard(&mask)?;
        dy.with_data(dx)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        Ok(*x)
    }
}

/// Gaussian error linear unit (tanh approximation), used by the
/// transformer/mixer models.
#[derive(Debug)]
pub struct Gelu {
    name: String,
    cache_x: Option<Matrix>,
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEF: f32 = 0.044_715;

fn gelu(v: f32) -> f32 {
    0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + GELU_COEF * v * v * v)).tanh())
}

fn gelu_grad(v: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (v + GELU_COEF * v * v * v);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * v * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * v * v)
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Gelu {
            name: name.into(),
            cache_x: None,
        }
    }
}

impl Layer for Gelu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let y = x.data().map(gelu);
        if mode.is_train() {
            self.cache_x = Some(x.data().clone());
        }
        x.with_data(y)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let x = self.cache_x.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let dx = dy.data().hadamard(&x.map(gelu_grad))?;
        dy.with_data(dx)
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        Ok(*x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new("relu");
        let x = Act::flat(Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]).unwrap());
        let y = r.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new("relu");
        let x = Act::flat(Matrix::from_rows(&[vec![-1.0, 3.0]]).unwrap());
        let _ = r.forward(x, Mode::Train).unwrap();
        let dx = r
            .backward(Act::flat(Matrix::from_rows(&[vec![5.0, 5.0]]).unwrap()))
            .unwrap();
        assert_eq!(dx.data().row(0), &[0.0, 5.0]);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU(x) → x for large x; GELU(-x) → 0.
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        // GELU(1) ≈ 0.8412 (tanh approx).
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradcheck() {
        for &v in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let fd = (gelu(v + eps) - gelu(v - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(v) - fd).abs() < 1e-3,
                "at {v}: {} vs {fd}",
                gelu_grad(v)
            );
        }
    }

    #[test]
    fn gelu_layer_backward() {
        let mut g = Gelu::new("gelu");
        let x = Act::flat(Matrix::from_rows(&[vec![0.5, -1.0]]).unwrap());
        let _ = g.forward(x, Mode::Train).unwrap();
        let dx = g
            .backward(Act::flat(Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap()))
            .unwrap();
        assert!((dx.data().get(0, 0) - gelu_grad(0.5)).abs() < 1e-6);
        assert!((dx.data().get(0, 1) - gelu_grad(-1.0)).abs() < 1e-6);
    }

    #[test]
    fn backward_requires_forward() {
        let mut r = Relu::new("relu");
        assert!(r.backward(Act::flat(Matrix::zeros(1, 1))).is_err());
        let mut g = Gelu::new("gelu");
        assert!(g.backward(Act::flat(Matrix::zeros(1, 1))).is_err());
    }
}
