use super::Layer;
use crate::shapecheck::{reject, SymShape, VerifyError};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;
use rand::Rng;

/// Multi-head self-attention (§2.1 "Multi-head attention (MHA) layer").
///
/// All four projections (`W_q`, `W_k`, `W_v`, `W_o`) are
/// [`FactorableWeight`]s and are factorized independently by Cuttlefish,
/// matching the paper's per-weight decomposition of attention layers.
/// Projections have no bias (matching the minimal DeiT formulation).
#[derive(Debug)]
pub struct MultiHeadAttention {
    name: String,
    wq: FactorableWeight,
    wk: FactorableWeight,
    wv: FactorableWeight,
    wo: FactorableWeight,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug)]
struct AttnCache {
    batch: usize,
    tokens: usize,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Softmax attention weights per (batch, head): `A[(b·H + h)]` is `T × T`.
    attn: Vec<Matrix>,
}

impl MultiHeadAttention {
    /// Creates an MHA layer over dimension `dim` with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide evenly into heads"
        );
        let proj = |rng: &mut R| {
            FactorableWeight::new_full(cuttlefish_tensor::init::xavier_linear(dim, dim, rng))
        };
        MultiHeadAttention {
            name: name.into(),
            wq: proj(rng),
            wk: proj(rng),
            wv: proj(rng),
            wo: proj(rng),
            heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Extracts the `(T, dh)` block of head `h` for sequence `b` from a
    /// `(B·T, D)` matrix.
    fn head_block(m: &Matrix, b: usize, h: usize, tokens: usize, dh: usize) -> Matrix {
        Matrix::from_fn(tokens, dh, |t, j| m.get(b * tokens + t, h * dh + j))
    }

    /// Adds a `(T, dh)` block back into the `(B·T, D)` accumulator.
    fn add_head_block(
        acc: &mut Matrix,
        block: &Matrix,
        b: usize,
        h: usize,
        tokens: usize,
        dh: usize,
    ) {
        for t in 0..tokens {
            for j in 0..dh {
                let cur = acc.get(b * tokens + t, h * dh + j);
                acc.set(b * tokens + t, h * dh + j, cur + block.get(t, j));
            }
        }
    }

    fn softmax_rows(m: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            let row = m.row(i);
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut denom = 0.0f32;
            let dst = out.row_mut(i);
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                dst[j] = e;
                denom += e;
            }
            for v in dst.iter_mut() {
                *v /= denom.max(f32::MIN_POSITIVE);
            }
        }
        out
    }
}

impl Layer for MultiHeadAttention {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        let (batch, tokens) = x.expect_seq(&self.name)?;
        let d = x.data().cols();
        if d != self.wq.in_dim() {
            return Err(NnError::BadActivation {
                layer: self.name.clone(),
                detail: format!("expected dim {}, got {d}", self.wq.in_dim()),
            });
        }
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(x.data(), mode)?;
        let k = self.wk.forward(x.data(), mode)?;
        let v = self.wv.forward(x.data(), mode)?;

        let mut concat = Matrix::zeros(batch * tokens, d);
        let mut attn_cache = Vec::new();
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = Self::head_block(&q, b, h, tokens, dh);
                let kb = Self::head_block(&k, b, h, tokens, dh);
                let vb = Self::head_block(&v, b, h, tokens, dh);
                let scores = qb.matmul_nt(&kb)?.scale(scale);
                let attn = Self::softmax_rows(&scores);
                let out = attn.matmul(&vb)?;
                Self::add_head_block(&mut concat, &out, b, h, tokens, dh);
                if mode.is_train() {
                    attn_cache.push(attn);
                }
            }
        }
        let y = self.wo.forward(&concat, mode)?;
        if mode.is_train() {
            self.cache = Some(AttnCache {
                batch,
                tokens,
                q,
                k,
                v,
                attn: attn_cache,
            });
        }
        Act::seq(y, batch, tokens)
    }

    fn backward(&mut self, dy: Act) -> NnResult<Act> {
        let cache = self.cache.take().ok_or_else(|| NnError::MissingCache {
            layer: self.name.clone(),
        })?;
        let d = dy.data().cols();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let (batch, tokens) = (cache.batch, cache.tokens);

        // W_o backward (its input, `concat`, was cached inside the weight).
        let dconcat = self.wo.backward(dy.data())?;

        let mut dq = Matrix::zeros(batch * tokens, d);
        let mut dk = Matrix::zeros(batch * tokens, d);
        let mut dv = Matrix::zeros(batch * tokens, d);
        for b in 0..batch {
            for h in 0..self.heads {
                let attn = &cache.attn[b * self.heads + h];
                let dout = Self::head_block(&dconcat, b, h, tokens, dh);
                let qb = Self::head_block(&cache.q, b, h, tokens, dh);
                let kb = Self::head_block(&cache.k, b, h, tokens, dh);
                let vb = Self::head_block(&cache.v, b, h, tokens, dh);

                // dV = Aᵀ · dOut ; dA = dOut · Vᵀ.
                let dvb = attn.matmul_tn(&dout)?;
                let dattn = dout.matmul_nt(&vb)?;
                // Softmax backward per row: dS = A ⊙ (dA − rowdot(dA, A)).
                let mut dscores = Matrix::zeros(tokens, tokens);
                for t in 0..tokens {
                    let arow = attn.row(t);
                    let darow = dattn.row(t);
                    let dot: f32 = arow.iter().zip(darow).map(|(&a, &da)| a * da).sum();
                    let dst = dscores.row_mut(t);
                    for j in 0..tokens {
                        dst[j] = arow[j] * (darow[j] - dot);
                    }
                }
                // dQ = (dS · K)·scale ; dK = (dSᵀ · Q)·scale.
                let dqb = dscores.matmul(&kb)?.scale(scale);
                let dkb = dscores.matmul_tn(&qb)?.scale(scale); // dSᵀ·Q
                Self::add_head_block(&mut dq, &dqb, b, h, tokens, dh);
                Self::add_head_block(&mut dk, &dkb, b, h, tokens, dh);
                Self::add_head_block(&mut dv, &dvb, b, h, tokens, dh);
            }
        }
        let dx_q = self.wq.backward(&dq)?;
        let dx_k = self.wk.backward(&dk)?;
        let dx_v = self.wv.backward(&dv)?;
        let dx = dx_q.add(&dx_k)?.add(&dx_v)?;
        Act::seq(dx, batch, tokens)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        let base = self.name.clone();
        f(&format!("{base}.wq"), &mut self.wq);
        f(&format!("{base}.wk"), &mut self.wk);
        f(&format!("{base}.wv"), &mut self.wv);
        f(&format!("{base}.wo"), &mut self.wo);
    }

    fn infer_shape(&self, x: &SymShape) -> Result<SymShape, VerifyError> {
        let SymShape::Seq { tokens, dim } = *x else {
            return Err(reject(&self.name, x, "expected a sequence activation"));
        };
        if dim != self.wq.in_dim() {
            return Err(reject(
                &self.name,
                x,
                format!("expected dim {}, got {dim}", self.wq.in_dim()),
            ));
        }
        Ok(SymShape::Seq {
            tokens,
            dim: self.wo.out_dim(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mha = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        let x = Act::seq(randn_matrix(6, 8, 1.0, &mut rng), 2, 3).unwrap();
        let y = mha.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().shape(), (6, 8));
        assert_eq!(y.expect_seq("t").unwrap(), (2, 3));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]).unwrap();
        let s = MultiHeadAttention::softmax_rows(&m);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.row(1)[2] > 0.99);
    }

    #[test]
    fn attention_is_permutation_sensitive_but_bounded() {
        // Output of attention with softmax weights is a convex combination
        // of value rows: |out| <= max |v row| (per head block).
        let mut rng = StdRng::seed_from_u64(1);
        let mut mha = MultiHeadAttention::new("attn", 4, 1, &mut rng);
        let x = Act::seq(randn_matrix(4, 4, 1.0, &mut rng), 1, 4).unwrap();
        let y = mha.forward(x, Mode::Eval).unwrap();
        assert!(y.data().max_abs().is_finite());
    }

    #[test]
    fn gradcheck_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mha = MultiHeadAttention::new("attn", 4, 2, &mut rng);
        let x = randn_matrix(4, 4, 0.8, &mut rng);
        let y = mha
            .forward(Act::seq(x.clone(), 2, 2).unwrap(), Mode::Train)
            .unwrap();
        let dy = y.data().clone();
        let dx = mha.backward(Act::seq(dy, 2, 2).unwrap()).unwrap();
        let eps = 5e-3f32;
        let loss = |mha: &mut MultiHeadAttention, x: &Matrix| -> f32 {
            let y = mha
                .forward(Act::seq(x.clone(), 2, 2).unwrap(), Mode::Eval)
                .unwrap();
            y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        for (i, j) in [(0usize, 0usize), (1, 3), (3, 2)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let fd = (loss(&mut mha, &xp) - loss(&mut mha, &xm)) / (2.0 * eps);
            let got = dx.data().get(i, j);
            assert!(
                (got - fd).abs() < 5e-2 * fd.abs().max(1.0),
                "dx[{i},{j}]={got} fd={fd}"
            );
        }
    }

    #[test]
    fn weight_gradcheck_wq() {
        // Finite-difference check on one entry of W_q.
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new("attn", 4, 1, &mut rng);
        let x = randn_matrix(3, 4, 0.5, &mut rng);
        let y = mha
            .forward(Act::seq(x.clone(), 1, 3).unwrap(), Mode::Train)
            .unwrap();
        let dy = y.data().clone();
        let _ = mha.backward(Act::seq(dy, 1, 3).unwrap()).unwrap();
        let mut grads = Vec::new();
        mha.visit_params(&mut |p| grads.push(p.grad.clone()));
        let g_wq = grads[0].clone();

        let eps = 5e-3f32;
        let (i, j) = (1usize, 2usize);
        let loss_with_wq_delta = |delta: f32| -> f32 {
            let mut m2 = MultiHeadAttention::new("attn", 4, 1, &mut StdRng::seed_from_u64(3));
            // Re-derive identical weights, then perturb wq[i][j].
            let mut idx = 0;
            m2.visit_params(&mut |p| {
                if idx == 0 {
                    let v = p.value.get(i, j);
                    p.value.set(i, j, v + delta);
                }
                idx += 1;
            });
            let y = m2
                .forward(Act::seq(x.clone(), 1, 3).unwrap(), Mode::Eval)
                .unwrap();
            y.data().as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        let fd = (loss_with_wq_delta(eps) - loss_with_wq_delta(-eps)) / (2.0 * eps);
        assert!(
            (g_wq.get(i, j) - fd).abs() < 5e-2 * fd.abs().max(1.0),
            "dWq[{i},{j}]={} fd={fd}",
            g_wq.get(i, j)
        );
    }

    #[test]
    fn factorizing_all_projections_at_full_rank_preserves_output() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mha = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        let x = Act::seq(randn_matrix(4, 8, 1.0, &mut rng), 1, 4).unwrap();
        let y_full = mha.forward(x.clone(), Mode::Eval).unwrap();
        mha.visit_weights(&mut |_, w| {
            let dense = w.dense().unwrap().clone();
            let svd = cuttlefish_tensor::svd::Svd::compute(&dense).unwrap();
            let (u, vt) = svd.split_sqrt(dense.full_rank()).unwrap();
            w.set_factored(u, vt, false, None).unwrap();
        });
        let y_fact = mha.forward(x, Mode::Eval).unwrap();
        assert!(y_full.data().sub(y_fact.data()).unwrap().frobenius_norm() < 1e-3);
    }

    #[test]
    fn visit_weights_names_all_projections() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mha = MultiHeadAttention::new("enc0.attn", 8, 2, &mut rng);
        let mut names = Vec::new();
        mha.visit_weights(&mut |n, _| names.push(n.to_string()));
        assert_eq!(
            names,
            vec![
                "enc0.attn.wq",
                "enc0.attn.wk",
                "enc0.attn.wv",
                "enc0.attn.wo"
            ]
        );
    }
}
