use crate::{NnError, NnResult};
use cuttlefish_tensor::Matrix;

/// Logical shape of an activation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// `(batch, features)` — dense features or token-id matrices.
    Flat,
    /// `(batch, channels·h·w)` with channel-major per-row layout.
    Image {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// `(batch·tokens, dim)` — token sequences, row-major by (batch, token).
    Seq {
        /// Number of sequences in the batch.
        batch: usize,
        /// Tokens per sequence.
        tokens: usize,
    },
}

/// An activation batch flowing through the network: a dense matrix plus a
/// logical shape tag.
///
/// * `Flat` activations are `(B, F)` matrices.
/// * `Image` activations are `(B, C·H·W)` matrices (channel-major rows),
///   convertible to/from [`cuttlefish_tensor::Tensor4`] by the conv layers.
/// * `Seq` activations are `(B·T, D)` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Act {
    data: Matrix,
    kind: ActKind,
}

impl Act {
    /// Wraps a `(B, F)` matrix as a flat activation.
    pub fn flat(data: Matrix) -> Self {
        Act {
            data,
            kind: ActKind::Flat,
        }
    }

    /// Wraps a `(B, c·h·w)` matrix as an image activation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] if the column count is not `c·h·w`.
    pub fn image(data: Matrix, c: usize, h: usize, w: usize) -> NnResult<Self> {
        if data.cols() != c * h * w {
            return Err(NnError::BadActivation {
                layer: "Act::image".to_string(),
                detail: format!("{} cols cannot be viewed as {c}x{h}x{w}", data.cols()),
            });
        }
        Ok(Act {
            data,
            kind: ActKind::Image { c, h, w },
        })
    }

    /// Wraps a `(batch·tokens, dim)` matrix as a sequence activation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] if the row count is not
    /// `batch·tokens`.
    pub fn seq(data: Matrix, batch: usize, tokens: usize) -> NnResult<Self> {
        if data.rows() != batch * tokens {
            return Err(NnError::BadActivation {
                layer: "Act::seq".to_string(),
                detail: format!(
                    "{} rows cannot be viewed as {batch}x{tokens} sequences",
                    data.rows()
                ),
            });
        }
        Ok(Act {
            data,
            kind: ActKind::Seq { batch, tokens },
        })
    }

    /// The underlying matrix.
    pub fn data(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the underlying matrix (shape must be preserved).
    pub fn data_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// The logical shape tag.
    pub fn kind(&self) -> ActKind {
        self.kind
    }

    /// Consumes the activation, returning its matrix.
    pub fn into_data(self) -> Matrix {
        self.data
    }

    /// Number of samples in the batch (sequences count once).
    pub fn batch_size(&self) -> usize {
        match self.kind {
            ActKind::Flat | ActKind::Image { .. } => self.data.rows(),
            ActKind::Seq { batch, .. } => batch,
        }
    }

    /// Replaces the matrix while keeping the kind; shapes must stay
    /// consistent.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] when the new matrix shape
    /// disagrees with the kind.
    pub fn with_data(&self, data: Matrix) -> NnResult<Self> {
        match self.kind {
            ActKind::Flat => Ok(Act::flat(data)),
            ActKind::Image { c, h, w } => Act::image(data, c, h, w),
            ActKind::Seq { batch, tokens } => Act::seq(data, batch, tokens),
        }
    }

    /// Interprets an image activation's dims, failing otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] for non-image activations.
    pub fn expect_image(&self, layer: &str) -> NnResult<(usize, usize, usize)> {
        match self.kind {
            ActKind::Image { c, h, w } => Ok((c, h, w)),
            other => Err(NnError::BadActivation {
                layer: layer.to_string(),
                detail: format!("expected image activation, got {other:?}"),
            }),
        }
    }

    /// Interprets a sequence activation's dims, failing otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] for non-sequence activations.
    pub fn expect_seq(&self, layer: &str) -> NnResult<(usize, usize)> {
        match self.kind {
            ActKind::Seq { batch, tokens } => Ok((batch, tokens)),
            other => Err(NnError::BadActivation {
                layer: layer.to_string(),
                detail: format!("expected sequence activation, got {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip() {
        let a = Act::flat(Matrix::zeros(4, 8));
        assert_eq!(a.kind(), ActKind::Flat);
        assert_eq!(a.batch_size(), 4);
    }

    #[test]
    fn image_shape_checked() {
        assert!(Act::image(Matrix::zeros(2, 12), 3, 2, 2).is_ok());
        assert!(Act::image(Matrix::zeros(2, 13), 3, 2, 2).is_err());
    }

    #[test]
    fn seq_shape_checked() {
        let a = Act::seq(Matrix::zeros(6, 16), 2, 3).unwrap();
        assert_eq!(a.batch_size(), 2);
        assert!(Act::seq(Matrix::zeros(5, 16), 2, 3).is_err());
    }

    #[test]
    fn expectations() {
        let img = Act::image(Matrix::zeros(1, 4), 1, 2, 2).unwrap();
        assert_eq!(img.expect_image("t").unwrap(), (1, 2, 2));
        assert!(img.expect_seq("t").is_err());
    }

    #[test]
    fn with_data_preserves_kind() {
        let img = Act::image(Matrix::zeros(1, 4), 1, 2, 2).unwrap();
        let replaced = img.with_data(Matrix::eye(2).take_rows(1).unwrap().take_cols(2).unwrap());
        // 1x2 matrix does not match 1x(1*2*2): error.
        assert!(replaced.is_err());
        let ok = img.with_data(Matrix::zeros(3, 4)).unwrap();
        assert_eq!(ok.kind(), img.kind());
    }
}
