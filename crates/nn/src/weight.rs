//! Factorable weights: the mechanism behind the full-rank → low-rank switch.
//!
//! Every layer that Cuttlefish can factorize (convolutions in their
//! unrolled `(m·k², n)` view, linear projections, each attention
//! projection) stores its weight as a [`FactorableWeight`]. During the
//! full-rank phase it is a dense matrix `W`; at the switching epoch the
//! `cuttlefish` crate replaces it with a pair `(U, Vᵀ)` obtained from the
//! SVD split `U = Ũ Σ^{1/2}`, `Vᵀ = Σ^{1/2} Ṽᵀ` (Algorithm 1), optionally
//! with an extra BatchNorm between the factors (§4.1) and optionally with
//! Frobenius decay `λ/2 · ‖UVᵀ‖_F²` replacing plain L2 decay (§4.1).

use crate::{Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;

/// A column-wise batch normalization core over `(N, C)` matrices.
///
/// Reused by the `BatchNorm2d` layer (after reshaping images so each row is
/// one spatial position) and as the "extra BN" inserted between the `U` and
/// `Vᵀ` factors of a factorized layer.
#[derive(Debug, Clone)]
pub struct BatchNormCore {
    /// Scale parameter `γ`, shape `(1, C)`.
    pub gamma: Param,
    /// Shift parameter `β`, shape `(1, C)`.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

impl BatchNormCore {
    /// Creates a BN core over `channels` columns with γ=1, β=0.
    pub fn new(channels: usize) -> Self {
        BatchNormCore {
            gamma: Param::new_no_decay(Matrix::from_fn(1, channels, |_, _| 1.0)),
            beta: Param::new_no_decay(Matrix::zeros(1, channels)),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Normalizes each column of `x`; in train mode uses batch statistics
    /// and updates the running estimates, in eval mode uses running stats.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadActivation`] if the column count disagrees
    /// with the core's channel count.
    pub fn forward(&mut self, x: &Matrix, mode: Mode) -> NnResult<Matrix> {
        let c = self.channels();
        if x.cols() != c {
            return Err(NnError::BadActivation {
                layer: "BatchNormCore".to_string(),
                detail: format!("expected {c} columns, got {}", x.cols()),
            });
        }
        let n = x.rows().max(1);
        let mut out = Matrix::zeros(x.rows(), c);
        if mode.is_train() {
            // Batch statistics (biased variance, matching normalization in
            // PyTorch; running stats use the same estimate at our scale).
            let mut mean = vec![0.0f64; c];
            let mut var = vec![0.0f64; c];
            for i in 0..x.rows() {
                let row = x.row(i);
                for j in 0..c {
                    mean[j] += row[j] as f64;
                }
            }
            for m in mean.iter_mut() {
                *m /= n as f64;
            }
            for i in 0..x.rows() {
                let row = x.row(i);
                for j in 0..c {
                    let d = row[j] as f64 - mean[j];
                    var[j] += d * d;
                }
            }
            for v in var.iter_mut() {
                *v /= n as f64;
            }
            let inv_std: Vec<f32> = var
                .iter()
                .map(|&v| (1.0 / (v + self.eps as f64).sqrt()) as f32)
                .collect();
            let mut x_hat = Matrix::zeros(x.rows(), c);
            for i in 0..x.rows() {
                let row = x.row(i);
                for j in 0..c {
                    let xh = (row[j] - mean[j] as f32) * inv_std[j];
                    x_hat.set(i, j, xh);
                    out.set(
                        i,
                        j,
                        self.gamma.value.get(0, j) * xh + self.beta.value.get(0, j),
                    );
                }
            }
            for j in 0..c {
                self.running_mean[j] =
                    (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean[j] as f32;
                self.running_var[j] =
                    (1.0 - self.momentum) * self.running_var[j] + self.momentum * var[j] as f32;
            }
            self.cache = Some(BnCache { x_hat, inv_std });
        } else {
            for i in 0..x.rows() {
                let row = x.row(i);
                for (j, &v) in row.iter().enumerate().take(c) {
                    let inv = 1.0 / (self.running_var[j] + self.eps).sqrt();
                    let xh = (v - self.running_mean[j]) * inv;
                    out.set(
                        i,
                        j,
                        self.gamma.value.get(0, j) * xh + self.beta.value.get(0, j),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Backward pass; accumulates γ/β gradients and returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] if no train-mode forward preceded.
    pub fn backward(&mut self, dy: &Matrix) -> NnResult<Matrix> {
        let cache = self.cache.take().ok_or_else(|| NnError::MissingCache {
            layer: "BatchNormCore".to_string(),
        })?;
        let c = self.channels();
        let n = dy.rows().max(1) as f32;
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for i in 0..dy.rows() {
            let row = dy.row(i);
            let xrow = cache.x_hat.row(i);
            for j in 0..c {
                sum_dy[j] += row[j];
                sum_dy_xhat[j] += row[j] * xrow[j];
            }
        }
        for j in 0..c {
            self.gamma
                .grad
                .set(0, j, self.gamma.grad.get(0, j) + sum_dy_xhat[j]);
            self.beta
                .grad
                .set(0, j, self.beta.grad.get(0, j) + sum_dy[j]);
        }
        let mut dx = Matrix::zeros(dy.rows(), c);
        for i in 0..dy.rows() {
            let dyrow = dy.row(i);
            let xrow = cache.x_hat.row(i);
            for j in 0..c {
                let g = self.gamma.value.get(0, j);
                let val = g * cache.inv_std[j] / n
                    * (n * dyrow[j] - sum_dy[j] - xrow[j] * sum_dy_xhat[j]);
                dx.set(i, j, val);
            }
        }
        Ok(dx)
    }

    /// Visits γ then β.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Number of scalar parameters (γ and β).
    pub fn param_count(&self) -> usize {
        self.gamma.count() + self.beta.count()
    }
}

/// The two states of a factorable weight.
// Variant sizes differ by design: `Full` is the transient pre-switch state
// and boxing it would cost an indirection on every forward pass.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum WeightState {
    /// Dense `W` of shape `(in, out)`.
    Full(Param),
    /// Factored `U (in × r)`, `Vᵀ (r × out)`, optional mid-BN, optional
    /// Frobenius-decay coefficient λ.
    Factored {
        u: Param,
        vt: Param,
        mid_bn: Option<BatchNormCore>,
        frobenius_decay: Option<f32>,
    },
}

/// A weight that is either dense or factored as `U · Vᵀ`.
///
/// The forward contract is `y = op(x)` where `op` is `x·W` when dense and
/// `(BN?)(x·U)·Vᵀ` when factored; both states cache what the backward pass
/// needs when run in [`Mode::Train`].
///
/// # Example
///
/// ```
/// use cuttlefish_nn::weight::FactorableWeight;
/// use cuttlefish_nn::Mode;
/// use cuttlefish_tensor::{Matrix, svd::Svd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Matrix::from_fn(6, 4, |i, j| ((i + j) as f32 * 0.3).sin());
/// let mut weight = FactorableWeight::new_full(w.clone());
///
/// // Mid-training, Cuttlefish swaps in the SVD factors at a chosen rank.
/// let svd = Svd::compute(&w)?;
/// let (u, vt) = svd.split_sqrt(2)?;
/// weight.set_factored(u, vt, /*extra_bn=*/ false, /*frobenius_decay=*/ None)?;
/// assert_eq!(weight.rank(), Some(2));
/// assert!(weight.param_count() < w.len());
///
/// // Same forward contract in both states.
/// let x = Matrix::from_fn(3, 6, |i, j| (i * 6 + j) as f32 * 0.1);
/// let y = weight.forward(&x, Mode::Eval)?;
/// assert_eq!(y.shape(), (3, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FactorableWeight {
    state: WeightState,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Matrix>,
    cache_mid: Option<Matrix>,
}

impl FactorableWeight {
    /// Creates a dense weight from an `(in, out)` matrix.
    pub fn new_full(w: Matrix) -> Self {
        let (in_dim, out_dim) = w.shape();
        FactorableWeight {
            state: WeightState::Full(Param::new(w)),
            in_dim,
            out_dim,
            cache_x: None,
            cache_mid: None,
        }
    }

    /// Input dimension (rows of `W`).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (cols of `W`).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Whether the weight is currently factored.
    pub fn is_factored(&self) -> bool {
        matches!(self.state, WeightState::Factored { .. })
    }

    /// Rank of the factorization, if factored.
    pub fn rank(&self) -> Option<usize> {
        match &self.state {
            WeightState::Full(_) => None,
            WeightState::Factored { u, .. } => Some(u.value.cols()),
        }
    }

    /// Dense weight matrix, if in the full state.
    pub fn dense(&self) -> Option<&Matrix> {
        match &self.state {
            WeightState::Full(p) => Some(&p.value),
            WeightState::Factored { .. } => None,
        }
    }

    /// Mutable dense weight matrix, if in the full state. Used by
    /// baselines that rewrite weights in place (XNOR binarization, IMP /
    /// GraSP masking); the shape must be preserved.
    pub fn dense_mut(&mut self) -> Option<&mut Matrix> {
        match &mut self.state {
            WeightState::Full(p) => Some(&mut p.value),
            WeightState::Factored { .. } => None,
        }
    }

    /// The effective `(in, out)` matrix: `W` when dense, `U·Vᵀ` when
    /// factored (ignoring any mid-BN).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if the stored factors no longer compose
    /// (possible only if a caller corrupted them through mutable access).
    pub fn effective(&self) -> NnResult<Matrix> {
        match &self.state {
            WeightState::Full(p) => Ok(p.value.clone()),
            WeightState::Factored { u, vt, .. } => Ok(u.value.matmul(&vt.value)?),
        }
    }

    /// The `(rows, cols)` of the *actually stored* weight: the dense
    /// matrix's shape when full, `(U.rows, Vᵀ.cols)` when factored.
    ///
    /// Unlike [`FactorableWeight::in_dim`]/[`FactorableWeight::out_dim`]
    /// (cached at construction), this re-reads the live storage, so
    /// [`crate::Network::verify`] catches weights corrupted through
    /// [`FactorableWeight::dense_mut`].
    pub fn stored_shape(&self) -> (usize, usize) {
        match &self.state {
            WeightState::Full(p) => p.value.shape(),
            WeightState::Factored { u, vt, .. } => (u.value.rows(), vt.value.cols()),
        }
    }

    /// Shapes of the `(U, Vᵀ)` factors when factored, `None` when dense.
    #[allow(clippy::type_complexity)]
    pub fn factor_shapes(&self) -> Option<((usize, usize), (usize, usize))> {
        match &self.state {
            WeightState::Full(_) => None,
            WeightState::Factored { u, vt, .. } => Some((u.value.shape(), vt.value.shape())),
        }
    }

    /// Number of trainable scalars in the current state.
    pub fn param_count(&self) -> usize {
        match &self.state {
            WeightState::Full(p) => p.count(),
            WeightState::Factored { u, vt, mid_bn, .. } => {
                u.count() + vt.count() + mid_bn.as_ref().map_or(0, |bn| bn.param_count())
            }
        }
    }

    /// Replaces the dense weight with the factored pair `(U, Vᵀ)`.
    ///
    /// When `frobenius_decay` is `Some(λ)`, plain L2 decay is disabled on
    /// the factors and [`FactorableWeight::apply_frobenius_decay`] adds the
    /// gradient of `λ/2 · ‖UVᵀ‖_F²` instead. When `extra_bn` is true a
    /// fresh BatchNorm is inserted between the factors.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the factor shapes are inconsistent
    /// with each other or with the original `(in, out)` shape.
    pub fn set_factored(
        &mut self,
        u: Matrix,
        vt: Matrix,
        extra_bn: bool,
        frobenius_decay: Option<f32>,
    ) -> NnResult<()> {
        if u.cols() != vt.rows() || u.rows() != self.in_dim || vt.cols() != self.out_dim {
            return Err(NnError::BadConfig {
                detail: format!(
                    "factors {:?} x {:?} do not compose to ({}, {})",
                    u.shape(),
                    vt.shape(),
                    self.in_dim,
                    self.out_dim
                ),
            });
        }
        let rank = u.cols();
        let decay_factors = frobenius_decay.is_none();
        let mut u = Param::new(u);
        let mut vt = Param::new(vt);
        u.weight_decay = decay_factors;
        vt.weight_decay = decay_factors;
        self.state = WeightState::Factored {
            u,
            vt,
            mid_bn: extra_bn.then(|| BatchNormCore::new(rank)),
            frobenius_decay,
        };
        self.cache_x = None;
        self.cache_mid = None;
        Ok(())
    }

    /// Computes `y = op(x)`, caching for backward when `mode` is train.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying matmuls.
    pub fn forward(&mut self, x: &Matrix, mode: Mode) -> NnResult<Matrix> {
        let y = match &mut self.state {
            WeightState::Full(p) => x.matmul(&p.value)?,
            WeightState::Factored { u, vt, mid_bn, .. } => {
                let mid0 = x.matmul(&u.value)?;
                let mid = match mid_bn {
                    Some(bn) => bn.forward(&mid0, mode)?,
                    None => mid0,
                };
                let y = mid.matmul(&vt.value)?;
                if mode.is_train() {
                    self.cache_mid = Some(mid);
                }
                y
            }
        };
        if mode.is_train() {
            self.cache_x = Some(x.clone());
        }
        Ok(y)
    }

    /// Backward pass: accumulates factor gradients and returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] without a preceding train-mode
    /// forward.
    pub fn backward(&mut self, dy: &Matrix) -> NnResult<Matrix> {
        let x = self.cache_x.take().ok_or_else(|| NnError::MissingCache {
            layer: "FactorableWeight".to_string(),
        })?;
        match &mut self.state {
            WeightState::Full(p) => {
                let dw = x.matmul_tn(dy)?;
                p.accumulate_grad(1.0, &dw);
                Ok(dy.matmul_nt(&p.value)?)
            }
            WeightState::Factored { u, vt, mid_bn, .. } => {
                let mid = self.cache_mid.take().ok_or_else(|| NnError::MissingCache {
                    layer: "FactorableWeight(mid)".to_string(),
                })?;
                let dvt = mid.matmul_tn(dy)?;
                vt.accumulate_grad(1.0, &dvt);
                let dmid = dy.matmul_nt(&vt.value)?;
                let dmid0 = match mid_bn {
                    Some(bn) => bn.backward(&dmid)?,
                    None => dmid,
                };
                let du = x.matmul_tn(&dmid0)?;
                u.accumulate_grad(1.0, &du);
                Ok(dmid0.matmul_nt(&u.value)?)
            }
        }
    }

    /// Adds the Frobenius-decay gradients `λ·U(VᵀV)` and `λ·(UᵀU)Vᵀ` when
    /// the weight is factored with FD enabled; no-op otherwise.
    ///
    /// The paper notes the shared `UVᵀ` term need only be computed once
    /// (§4.1); using the Gram form `VᵀV = Vᵀ(Vᵀ)ᵀ` we avoid materializing
    /// the `(in, out)` product entirely — cost is `O(r²(in+out))`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if the stored factors no longer compose
    /// (possible only if a caller corrupted them through mutable access).
    pub fn apply_frobenius_decay(&mut self) -> NnResult<()> {
        if let WeightState::Factored {
            u,
            vt,
            frobenius_decay: Some(lambda),
            ..
        } = &mut self.state
        {
            let lambda = *lambda;
            let vt_gram = vt.value.matmul_nt(&vt.value)?; // (r, r) = VᵀV
            let du = u.value.matmul(&vt_gram)?;
            u.accumulate_grad(lambda, &du);
            let u_gram = u.value.matmul_tn(&u.value)?; // (r, r) = UᵀU
            let dvt = u_gram.matmul(&vt.value)?;
            vt.accumulate_grad(lambda, &dvt);
        }
        Ok(())
    }

    /// Visits all parameters in a deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match &mut self.state {
            WeightState::Full(p) => f(p),
            WeightState::Factored { u, vt, mid_bn, .. } => {
                f(u);
                f(vt);
                if let Some(bn) = mid_bn {
                    bn.visit_params(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_tensor::init::randn_matrix;
    use cuttlefish_tensor::svd::Svd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn full_forward_is_matmul() {
        let w = Matrix::eye(3);
        let mut fw = FactorableWeight::new_full(w);
        let x = randn_matrix(4, 3, 1.0, &mut rng(0));
        let y = fw.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn full_backward_gradients() {
        // y = xW, L = sum(y) ⇒ dW = xᵀ·1, dx = 1·Wᵀ.
        let w = randn_matrix(3, 2, 1.0, &mut rng(1));
        let mut fw = FactorableWeight::new_full(w.clone());
        let x = randn_matrix(5, 3, 1.0, &mut rng(2));
        let _ = fw.forward(&x, Mode::Train).unwrap();
        let dy = Matrix::from_fn(5, 2, |_, _| 1.0);
        let dx = fw.backward(&dy).unwrap();
        let expect_dx = dy.matmul_nt(&w).unwrap();
        assert!(dx.sub(&expect_dx).unwrap().frobenius_norm() < 1e-5);
        let mut grads = Vec::new();
        fw.visit_params(&mut |p| grads.push(p.grad.clone()));
        let expect_dw = x.matmul_tn(&dy).unwrap();
        assert!(grads[0].sub(&expect_dw).unwrap().frobenius_norm() < 1e-5);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut fw = FactorableWeight::new_full(Matrix::eye(2));
        assert!(matches!(
            fw.backward(&Matrix::zeros(1, 2)),
            Err(NnError::MissingCache { .. })
        ));
    }

    #[test]
    fn set_factored_validates_shapes() {
        let mut fw = FactorableWeight::new_full(Matrix::zeros(4, 6));
        assert!(fw
            .set_factored(Matrix::zeros(4, 2), Matrix::zeros(3, 6), false, None)
            .is_err());
        assert!(fw
            .set_factored(Matrix::zeros(5, 2), Matrix::zeros(2, 6), false, None)
            .is_err());
        assert!(fw
            .set_factored(Matrix::zeros(4, 2), Matrix::zeros(2, 6), false, None)
            .is_ok());
        assert!(fw.is_factored());
        assert_eq!(fw.rank(), Some(2));
    }

    #[test]
    fn factored_forward_matches_product() {
        let w = randn_matrix(6, 5, 1.0, &mut rng(3));
        let svd = Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(5).unwrap();
        let mut fw = FactorableWeight::new_full(w.clone());
        fw.set_factored(u, vt, false, None).unwrap();
        let x = randn_matrix(3, 6, 1.0, &mut rng(4));
        let y = fw.forward(&x, Mode::Eval).unwrap();
        let expect = x.matmul(&w).unwrap();
        assert!(y.sub(&expect).unwrap().frobenius_norm() < 1e-3);
        assert!(fw.effective().unwrap().sub(&w).unwrap().frobenius_norm() < 1e-3);
    }

    #[test]
    fn factored_backward_gradients_match_dense_composition() {
        // Compare factored backward against manually composing two matmuls.
        let u0 = randn_matrix(4, 2, 1.0, &mut rng(5));
        let vt0 = randn_matrix(2, 3, 1.0, &mut rng(6));
        let mut fw = FactorableWeight::new_full(Matrix::zeros(4, 3));
        fw.set_factored(u0.clone(), vt0.clone(), false, None)
            .unwrap();
        let x = randn_matrix(7, 4, 1.0, &mut rng(7));
        let _ = fw.forward(&x, Mode::Train).unwrap();
        let dy = randn_matrix(7, 3, 1.0, &mut rng(8));
        let dx = fw.backward(&dy).unwrap();

        let mid = x.matmul(&u0).unwrap();
        let expect_dvt = mid.matmul_tn(&dy).unwrap();
        let dmid = dy.matmul_nt(&vt0).unwrap();
        let expect_du = x.matmul_tn(&dmid).unwrap();
        let expect_dx = dmid.matmul_nt(&u0).unwrap();

        let mut grads = Vec::new();
        fw.visit_params(&mut |p| grads.push(p.grad.clone()));
        assert!(grads[0].sub(&expect_du).unwrap().frobenius_norm() < 1e-4);
        assert!(grads[1].sub(&expect_dvt).unwrap().frobenius_norm() < 1e-4);
        assert!(dx.sub(&expect_dx).unwrap().frobenius_norm() < 1e-4);
    }

    #[test]
    fn frobenius_decay_matches_definition() {
        // ∇_U λ/2‖UVᵀ‖² = λ·(UVᵀ)·V, ∇_{Vᵀ} = λ·Uᵀ·(UVᵀ).
        let u0 = randn_matrix(4, 2, 1.0, &mut rng(9));
        let vt0 = randn_matrix(2, 3, 1.0, &mut rng(10));
        let mut fw = FactorableWeight::new_full(Matrix::zeros(4, 3));
        fw.set_factored(u0.clone(), vt0.clone(), false, Some(0.3))
            .unwrap();
        fw.apply_frobenius_decay().unwrap();
        let prod = u0.matmul(&vt0).unwrap();
        let expect_du = prod.matmul_nt(&vt0).unwrap().scale(0.3);
        let expect_dvt = u0.transpose().matmul(&prod).unwrap().scale(0.3);
        let mut grads = Vec::new();
        fw.visit_params(&mut |p| grads.push(p.grad.clone()));
        assert!(grads[0].sub(&expect_du).unwrap().frobenius_norm() < 1e-4);
        assert!(grads[1].sub(&expect_dvt).unwrap().frobenius_norm() < 1e-4);
    }

    #[test]
    fn frobenius_decay_disables_plain_l2_on_factors() {
        let mut fw = FactorableWeight::new_full(Matrix::zeros(4, 3));
        fw.set_factored(Matrix::zeros(4, 2), Matrix::zeros(2, 3), false, Some(0.1))
            .unwrap();
        let mut flags = Vec::new();
        fw.visit_params(&mut |p| flags.push(p.weight_decay));
        assert_eq!(flags, vec![false, false]);

        let mut fw2 = FactorableWeight::new_full(Matrix::zeros(4, 3));
        fw2.set_factored(Matrix::zeros(4, 2), Matrix::zeros(2, 3), false, None)
            .unwrap();
        let mut flags2 = Vec::new();
        fw2.visit_params(&mut |p| flags2.push(p.weight_decay));
        assert_eq!(flags2, vec![true, true]);
    }

    #[test]
    fn param_count_shrinks_after_factorization() {
        let mut fw = FactorableWeight::new_full(randn_matrix(64, 64, 1.0, &mut rng(11)));
        let full = fw.param_count();
        fw.set_factored(Matrix::zeros(64, 4), Matrix::zeros(4, 64), false, None)
            .unwrap();
        assert!(fw.param_count() < full / 4);
    }

    #[test]
    fn extra_bn_adds_params_and_runs() {
        let mut fw = FactorableWeight::new_full(randn_matrix(8, 8, 1.0, &mut rng(12)));
        fw.set_factored(
            randn_matrix(8, 3, 1.0, &mut rng(13)),
            randn_matrix(3, 8, 1.0, &mut rng(14)),
            true,
            None,
        )
        .unwrap();
        assert_eq!(fw.param_count(), 8 * 3 + 3 * 8 + 6);
        let x = randn_matrix(16, 8, 1.0, &mut rng(15));
        let y = fw.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), (16, 8));
        let dx = fw.backward(&y).unwrap();
        assert_eq!(dx.shape(), (16, 8));
    }

    #[test]
    fn bn_core_normalizes_columns() {
        let mut bn = BatchNormCore::new(2);
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Each column: mean 0, unit variance (up to eps).
        for j in 0..2 {
            let mean: f32 = (0..3).map(|i| y.get(i, j)).sum::<f32>() / 3.0;
            let var: f32 = (0..3).map(|i| (y.get(i, j) - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNormCore::new(1);
        let x = Matrix::from_rows(&[vec![2.0], vec![4.0]]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train).unwrap();
        }
        // Running mean → 3, running var → 1; eval output centers on those.
        let y = bn
            .forward(&Matrix::from_rows(&[vec![3.0]]).unwrap(), Mode::Eval)
            .unwrap();
        assert!(y.get(0, 0).abs() < 1e-2, "{}", y.get(0, 0));
    }

    #[test]
    fn bn_backward_gradcheck() {
        // Finite-difference check of dL/dx for L = Σ y² / 2.
        let mut bn = BatchNormCore::new(2);
        // Give gamma a non-trivial value.
        bn.gamma.value.set(0, 0, 1.5);
        bn.gamma.value.set(0, 1, 0.7);
        let x = randn_matrix(5, 2, 1.0, &mut rng(16));
        let y = bn.forward(&x, Mode::Train).unwrap();
        let dy = y.clone();
        let dx = bn.backward(&dy).unwrap();
        let eps = 1e-2f32;
        for (i, j) in [(0usize, 0usize), (2, 1), (4, 0)] {
            let mut bn2 = BatchNormCore::new(2);
            bn2.gamma.value.set(0, 0, 1.5);
            bn2.gamma.value.set(0, 1, 0.7);
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let yp = bn2.forward(&xp, Mode::Train).unwrap();
            let mut bn3 = BatchNormCore::new(2);
            bn3.gamma.value.set(0, 0, 1.5);
            bn3.gamma.value.set(0, 1, 0.7);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let ym = bn3.forward(&xm, Mode::Train).unwrap();
            let lp: f32 = yp.as_slice().iter().map(|v| v * v / 2.0).sum();
            let lm: f32 = ym.as_slice().iter().map(|v| v * v / 2.0).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.get(i, j) - fd).abs() < 2e-2 * fd.abs().max(1.0),
                "dx[{i},{j}] = {} vs fd {}",
                dx.get(i, j),
                fd
            );
        }
    }

    #[test]
    fn bn_rejects_wrong_width() {
        let mut bn = BatchNormCore::new(3);
        assert!(bn.forward(&Matrix::zeros(2, 4), Mode::Train).is_err());
    }
}
