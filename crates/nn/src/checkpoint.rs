//! Checkpointing: serialize and restore a network's trainable state.
//!
//! A [`Checkpoint`] captures every parameter value *and* the factorization
//! state of every [`crate::weight::FactorableWeight`] (dense vs. `(U, Vᵀ)`
//! with rank), so a Cuttlefish run can be saved after the switch and
//! restored into a freshly built network of the same architecture — the
//! restore re-factorizes targets as needed before loading values.
//!
//! The format is plain `serde` (JSON-friendly), keyed by parameter visit
//! order, with the factorization layout validated on load.

use crate::{Network, NnError, NnResult};
use cuttlefish_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Factorization layout of one target at save time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetState {
    /// Target name.
    pub name: String,
    /// `Some(rank)` if factored.
    pub rank: Option<usize>,
}

/// A serializable snapshot of a network's trainable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Network name (checked on load).
    pub network: String,
    /// Factorization layout per target.
    pub targets: Vec<TargetState>,
    /// Every parameter value, in visit order.
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Captures the current state of `net`.
    pub fn capture(net: &mut Network) -> Self {
        let mut targets = Vec::new();
        net.visit_weights(&mut |name, w| {
            targets.push(TargetState {
                name: name.to_string(),
                rank: w.rank(),
            });
        });
        let mut params = Vec::new();
        net.visit_params(&mut |p| params.push(p.value.clone()));
        Checkpoint {
            network: net.name().to_string(),
            targets,
            params,
        }
    }

    /// Restores this checkpoint into `net`, which must be a freshly built
    /// network of the same architecture (same name, same targets). Targets
    /// that were factored at save time are factorized (at the saved rank,
    /// placeholder values) before the parameter values are loaded over
    /// them.
    ///
    /// Parameter loading is all-or-nothing: every restored value's matrix
    /// dimensions are validated against the live network *before* any
    /// parameter is overwritten, so a failed restore never leaves the
    /// network with a half-loaded mixture of old and checkpoint values
    /// (the factor layout, recreated first, may still have been applied).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on an architecture (name / target
    /// layout / parameter count) mismatch, or
    /// [`NnError::CheckpointMismatch`] naming the first parameter whose
    /// stored shape disagrees with the live network.
    pub fn restore(&self, net: &mut Network) -> NnResult<()> {
        if net.name() != self.network {
            return Err(NnError::BadConfig {
                detail: format!(
                    "checkpoint is for `{}`, network is `{}`",
                    self.network,
                    net.name()
                ),
            });
        }
        // Recreate the factorization layout.
        for ts in &self.targets {
            let current = net.rank_of(&ts.name)?;
            match (current, ts.rank) {
                (None, Some(r)) => {
                    // Factorize with placeholder factors of the right shape;
                    // real values are loaded below.
                    let t = net
                        .targets()
                        .iter()
                        .find(|t| t.name == ts.name)
                        .ok_or_else(|| NnError::UnknownTarget {
                            name: ts.name.clone(),
                        })?
                        .clone();
                    let (rows, cols) = t.matrix_shape();
                    net.factorize_target(
                        &ts.name,
                        Matrix::zeros(rows, r),
                        Matrix::zeros(r, cols),
                        false,
                        None,
                    )?;
                }
                (Some(cur), Some(saved)) if cur != saved => {
                    return Err(NnError::BadConfig {
                        detail: format!(
                            "target `{}` already factored at rank {cur}, checkpoint has {saved}",
                            ts.name
                        ),
                    });
                }
                (Some(_), None) => {
                    return Err(NnError::BadConfig {
                        detail: format!(
                            "target `{}` is factored but the checkpoint is dense",
                            ts.name
                        ),
                    });
                }
                _ => {}
            }
        }
        // Validate every parameter's dimensions against the live network
        // before mutating anything, so a mismatch cannot leave the network
        // half-restored.
        let mut live: Vec<(String, (usize, usize))> = Vec::new();
        net.visit_params_named(&mut |name, p| {
            live.push((name.to_string(), p.value.shape()));
        });
        if live.len() != self.params.len() {
            return Err(NnError::BadConfig {
                detail: format!(
                    "network has {} params, checkpoint {}",
                    live.len(),
                    self.params.len()
                ),
            });
        }
        for ((name, shape), saved) in live.iter().zip(&self.params) {
            if *shape != saved.shape() {
                return Err(NnError::CheckpointMismatch {
                    param: name.clone(),
                    checkpoint: saved.shape(),
                    network: *shape,
                });
            }
        }
        // Load values; shapes are proven compatible above.
        let mut i = 0usize;
        net.visit_params(&mut |p| {
            if let Some(v) = self.params.get(i) {
                p.value = v.clone();
                p.slots.clear();
                p.zero_grad();
            }
            i += 1;
        });
        Ok(())
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on serialization failure.
    pub fn to_json(&self) -> NnResult<String> {
        serde_json::to_string(self).map_err(|e| NnError::BadConfig {
            detail: format!("checkpoint serialization failed: {e}"),
        })
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on malformed input.
    pub fn from_json(json: &str) -> NnResult<Self> {
        serde_json::from_str(json).map_err(|e| NnError::BadConfig {
            detail: format!("checkpoint deserialization failed: {e}"),
        })
    }

    /// Saves this checkpoint to `path` atomically: the JSON is written to
    /// a temporary file in the same directory and renamed into place, so a
    /// crash mid-write can never leave a truncated checkpoint under the
    /// final name.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointIo`] when the temp file cannot be
    /// written or the rename fails, and propagates serialization errors.
    pub fn save_to_path(&self, path: impl AsRef<std::path::Path>) -> NnResult<()> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let io_err = |detail: String| NnError::CheckpointIo {
            path: path.display().to_string(),
            detail,
        };
        let file_name = path
            .file_name()
            .ok_or_else(|| io_err("path has no file name".to_string()))?
            .to_string_lossy()
            .into_owned();
        // Same directory as the destination so the rename stays on one
        // filesystem (rename across filesystems is not atomic).
        let tmp = path.with_file_name(format!(".{file_name}.tmp{}", std::process::id()));
        std::fs::write(&tmp, json.as_bytes()).map_err(|e| io_err(e.to_string()))?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(e.to_string()));
        }
        Ok(())
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save_to_path`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointIo`] when the file cannot be read and
    /// [`NnError::CheckpointCorrupt`] when it reads but does not parse as
    /// a checkpoint (partial write through some non-atomic channel,
    /// truncation, or plain wrong contents).
    pub fn load_from_path(path: impl AsRef<std::path::Path>) -> NnResult<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| NnError::CheckpointIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        serde_json::from_str(&json).map_err(|e| NnError::CheckpointCorrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_micro_resnet18, MicroResNetConfig};
    use crate::{Act, Mode};
    use cuttlefish_tensor::svd::Svd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        build_micro_resnet18(
            &MicroResNetConfig::tiny(4),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn factorize_one(n: &mut Network, name: &str, rank: usize) {
        let w = n.weight_matrix(name).unwrap();
        let svd = Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(rank).unwrap();
        n.factorize_target(name, u, vt, false, None).unwrap();
    }

    #[test]
    fn roundtrip_dense_network() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        let mut b = net(2); // different init
        ckpt.restore(&mut b).unwrap();
        // Outputs now identical.
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut StdRng::seed_from_u64(3)),
            3,
            8,
            8,
        )
        .unwrap();
        let ya = a.forward(x.clone(), Mode::Eval).unwrap();
        let yb = b.forward(x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn roundtrip_factorized_network() {
        let mut a = net(1);
        factorize_one(&mut a, "s3.b0.conv1", 4);
        factorize_one(&mut a, "s4.b0.conv2", 6);
        let ckpt = Checkpoint::capture(&mut a);

        let mut b = net(9);
        ckpt.restore(&mut b).unwrap();
        assert_eq!(b.rank_of("s3.b0.conv1").unwrap(), Some(4));
        assert_eq!(b.rank_of("s4.b0.conv2").unwrap(), Some(6));
        assert_eq!(a.param_count(), b.param_count());
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(1, 3 * 64, 1.0, &mut StdRng::seed_from_u64(4)),
            3,
            8,
            8,
        )
        .unwrap();
        let ya = a.forward(x.clone(), Mode::Eval).unwrap();
        let yb = b.forward(x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn json_roundtrip() {
        let mut a = net(5);
        factorize_one(&mut a, "s2.b0.conv1", 3);
        let ckpt = Checkpoint::capture(&mut a);
        let json = ckpt.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(ckpt, back);
        assert!(Checkpoint::from_json("{not json").is_err());
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        let mut other = crate::models::build_micro_vgg19(
            &crate::models::MicroVggConfig::tiny(4),
            &mut StdRng::seed_from_u64(0),
        );
        assert!(ckpt.restore(&mut other).is_err());
    }

    #[test]
    fn mismatch_names_first_bad_param_and_loads_nothing() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        // Same architecture family, same name, different classifier width:
        // rebuild with more classes so only the head shapes differ.
        let mut b =
            build_micro_resnet18(&MicroResNetConfig::tiny(7), &mut StdRng::seed_from_u64(3));
        let mut before = Vec::new();
        b.visit_params(&mut |p| before.push(p.value.clone()));
        let err = ckpt.restore(&mut b).unwrap_err();
        match err {
            NnError::CheckpointMismatch {
                param,
                checkpoint,
                network,
            } => {
                assert!(param.contains("fc"), "unexpected param name `{param}`");
                assert_ne!(checkpoint, network);
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // No parameter value was overwritten.
        let mut i = 0usize;
        b.visit_params(&mut |p| {
            assert_eq!(
                p.value, before[i],
                "param {i} was mutated by failed restore"
            );
            i += 1;
        });
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let mut a = net(11);
        factorize_one(&mut a, "s2.b0.conv1", 3);
        let ckpt = Checkpoint::capture(&mut a);
        let dir = std::env::temp_dir().join(format!("cuttlefish-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt.json");
        ckpt.save_to_path(&path).unwrap();
        // No temp-file droppings next to the final artifact.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let back = Checkpoint::load_from_path(&path).unwrap();
        assert_eq!(back, ckpt);

        // Missing file → CheckpointIo; corrupt file → CheckpointCorrupt.
        assert!(matches!(
            Checkpoint::load_from_path(dir.join("nope.json")),
            Err(NnError::CheckpointIo { .. })
        ));
        let truncated = dir.join("truncated.json");
        let full = ckpt.to_json().unwrap();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Checkpoint::load_from_path(&truncated),
            Err(NnError::CheckpointCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_rank_conflicts() {
        let mut a = net(1);
        factorize_one(&mut a, "s3.b0.conv1", 4);
        let ckpt = Checkpoint::capture(&mut a);
        // Target already factored at a different rank.
        let mut b = net(1);
        factorize_one(&mut b, "s3.b0.conv1", 7);
        assert!(ckpt.restore(&mut b).is_err());
        // Dense checkpoint into factored net.
        let mut c = net(1);
        let dense_ckpt = Checkpoint::capture(&mut net(1));
        factorize_one(&mut c, "s3.b0.conv1", 4);
        assert!(dense_ckpt.restore(&mut c).is_err());
    }
}
