//! Checkpointing: serialize and restore a network's trainable state.
//!
//! A [`Checkpoint`] captures every parameter value *and* the factorization
//! state of every [`crate::weight::FactorableWeight`] (dense vs. `(U, Vᵀ)`
//! with rank), so a Cuttlefish run can be saved after the switch and
//! restored into a freshly built network of the same architecture — the
//! restore re-factorizes targets as needed before loading values.
//!
//! The format is plain `serde` (JSON-friendly), keyed by parameter visit
//! order, with the factorization layout validated on load.

use crate::{Network, NnError, NnResult};
use cuttlefish_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Factorization layout of one target at save time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetState {
    /// Target name.
    pub name: String,
    /// `Some(rank)` if factored.
    pub rank: Option<usize>,
}

/// A serializable snapshot of a network's trainable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Network name (checked on load).
    pub network: String,
    /// Factorization layout per target.
    pub targets: Vec<TargetState>,
    /// Every parameter value, in visit order.
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Captures the current state of `net`.
    pub fn capture(net: &mut Network) -> Self {
        let mut targets = Vec::new();
        net.visit_weights(&mut |name, w| {
            targets.push(TargetState {
                name: name.to_string(),
                rank: w.rank(),
            });
        });
        let mut params = Vec::new();
        net.visit_params(&mut |p| params.push(p.value.clone()));
        Checkpoint {
            network: net.name().to_string(),
            targets,
            params,
        }
    }

    /// Restores this checkpoint into `net`, which must be a freshly built
    /// network of the same architecture (same name, same targets). Targets
    /// that were factored at save time are factorized (at the saved rank,
    /// placeholder values) before the parameter values are loaded over
    /// them.
    ///
    /// Parameter loading is all-or-nothing: every restored value's matrix
    /// dimensions are validated against the live network *before* any
    /// parameter is overwritten, so a failed restore never leaves the
    /// network with a half-loaded mixture of old and checkpoint values
    /// (the factor layout, recreated first, may still have been applied).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on an architecture (name / target
    /// layout / parameter count) mismatch, or
    /// [`NnError::CheckpointMismatch`] naming the first parameter whose
    /// stored shape disagrees with the live network.
    pub fn restore(&self, net: &mut Network) -> NnResult<()> {
        if net.name() != self.network {
            return Err(NnError::BadConfig {
                detail: format!(
                    "checkpoint is for `{}`, network is `{}`",
                    self.network,
                    net.name()
                ),
            });
        }
        // Recreate the factorization layout.
        for ts in &self.targets {
            let current = net.rank_of(&ts.name)?;
            match (current, ts.rank) {
                (None, Some(r)) => {
                    // Factorize with placeholder factors of the right shape;
                    // real values are loaded below.
                    let t = net
                        .targets()
                        .iter()
                        .find(|t| t.name == ts.name)
                        .ok_or_else(|| NnError::UnknownTarget {
                            name: ts.name.clone(),
                        })?
                        .clone();
                    let (rows, cols) = t.matrix_shape();
                    net.factorize_target(
                        &ts.name,
                        Matrix::zeros(rows, r),
                        Matrix::zeros(r, cols),
                        false,
                        None,
                    )?;
                }
                (Some(cur), Some(saved)) if cur != saved => {
                    return Err(NnError::BadConfig {
                        detail: format!(
                            "target `{}` already factored at rank {cur}, checkpoint has {saved}",
                            ts.name
                        ),
                    });
                }
                (Some(_), None) => {
                    return Err(NnError::BadConfig {
                        detail: format!(
                            "target `{}` is factored but the checkpoint is dense",
                            ts.name
                        ),
                    });
                }
                _ => {}
            }
        }
        // Validate every parameter's dimensions against the live network
        // before mutating anything, so a mismatch cannot leave the network
        // half-restored.
        let mut live: Vec<(String, (usize, usize))> = Vec::new();
        net.visit_params_named(&mut |name, p| {
            live.push((name.to_string(), p.value.shape()));
        });
        if live.len() != self.params.len() {
            return Err(NnError::BadConfig {
                detail: format!(
                    "network has {} params, checkpoint {}",
                    live.len(),
                    self.params.len()
                ),
            });
        }
        for ((name, shape), saved) in live.iter().zip(&self.params) {
            if *shape != saved.shape() {
                return Err(NnError::CheckpointMismatch {
                    param: name.clone(),
                    checkpoint: saved.shape(),
                    network: *shape,
                });
            }
        }
        // Load values; shapes are proven compatible above.
        let mut i = 0usize;
        net.visit_params(&mut |p| {
            if let Some(v) = self.params.get(i) {
                p.value = v.clone();
                p.slots.clear();
                p.zero_grad();
            }
            i += 1;
        });
        Ok(())
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on serialization failure.
    pub fn to_json(&self) -> NnResult<String> {
        serde_json::to_string(self).map_err(|e| NnError::BadConfig {
            detail: format!("checkpoint serialization failed: {e}"),
        })
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on malformed input.
    pub fn from_json(json: &str) -> NnResult<Self> {
        serde_json::from_str(json).map_err(|e| NnError::BadConfig {
            detail: format!("checkpoint deserialization failed: {e}"),
        })
    }

    /// Saves this checkpoint to `path` atomically and durably: the JSON
    /// is written to a temporary file in the same directory, **fsynced**,
    /// and then renamed into place.
    ///
    /// Durability contract: the rename is what makes the write atomic
    /// (readers see either the old complete file or the new complete
    /// file, never a mixture), and the fsync before it is what makes it
    /// durable — without it, a power loss shortly after the rename could
    /// leave the *new name* pointing at *unwritten data* on journaled
    /// filesystems that reorder data behind metadata. After this returns,
    /// the checkpoint contents are on stable storage; the directory entry
    /// itself is not fsynced, so the hardest crash window is "the save
    /// never happened" (old file intact), never a corrupt artifact.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointIo`] when the temp file cannot be
    /// written, synced, or renamed, and propagates serialization errors.
    pub fn save_to_path(&self, path: impl AsRef<std::path::Path>) -> NnResult<()> {
        use std::io::Write as _;
        let path = path.as_ref();
        let json = self.to_json()?;
        let io_err = |detail: String| NnError::CheckpointIo {
            path: path.display().to_string(),
            detail,
        };
        let file_name = path
            .file_name()
            .ok_or_else(|| io_err("path has no file name".to_string()))?
            .to_string_lossy()
            .into_owned();
        // Same directory as the destination so the rename stays on one
        // filesystem (rename across filesystems is not atomic).
        let tmp = path.with_file_name(format!(".{file_name}.tmp{}", std::process::id()));
        let write_synced = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            // Flush file contents to stable storage before the rename
            // publishes the name (see the durability contract above).
            f.sync_all()
        };
        if let Err(e) = write_synced() {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(e.to_string()));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(e.to_string()));
        }
        Ok(())
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save_to_path`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointIo`] when the file cannot be read and
    /// [`NnError::CheckpointCorrupt`] when it reads but does not parse as
    /// a checkpoint (partial write through some non-atomic channel,
    /// truncation, or plain wrong contents).
    pub fn load_from_path(path: impl AsRef<std::path::Path>) -> NnResult<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| NnError::CheckpointIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        serde_json::from_str(&json).map_err(|e| NnError::CheckpointCorrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Canonical artifact file name for version `version` of model
    /// `model`: `<model>-v<version>.ckpt.json`. This is the naming scheme
    /// the fleet registry's versioned store uses; [`Checkpoint::save_versioned`]
    /// and [`Checkpoint::list_versions`] round-trip through it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an empty model id, one
    /// containing a path separator, or `version == 0` (versions are
    /// 1-based so "no version yet" has no ambiguous encoding).
    pub fn versioned_file_name(model: &str, version: u32) -> NnResult<String> {
        if model.is_empty() || model.contains('/') || model.contains('\\') {
            return Err(NnError::BadConfig {
                detail: format!("model id `{model}` must be non-empty and path-separator-free"),
            });
        }
        if version == 0 {
            return Err(NnError::BadConfig {
                detail: "checkpoint versions are 1-based".to_string(),
            });
        }
        Ok(format!("{model}-v{version}.ckpt.json"))
    }

    /// Saves this checkpoint as version `version` of `model` under `dir`
    /// (created if missing), using the atomic + fsynced
    /// [`Checkpoint::save_to_path`] write. Returns the artifact path.
    ///
    /// # Errors
    ///
    /// Propagates naming errors from [`Checkpoint::versioned_file_name`]
    /// and I/O errors from the atomic save.
    pub fn save_versioned(
        &self,
        dir: impl AsRef<std::path::Path>,
        model: &str,
        version: u32,
    ) -> NnResult<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| NnError::CheckpointIo {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        let path = dir.join(Self::versioned_file_name(model, version)?);
        self.save_to_path(&path)?;
        Ok(path)
    }

    /// Loads version `version` of `model` from `dir`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Checkpoint::load_from_path`], plus naming
    /// errors from [`Checkpoint::versioned_file_name`].
    pub fn load_versioned(
        dir: impl AsRef<std::path::Path>,
        model: &str,
        version: u32,
    ) -> NnResult<Self> {
        Self::load_from_path(
            dir.as_ref()
                .join(Self::versioned_file_name(model, version)?),
        )
    }

    /// Lists the versions of `model` present under `dir`, ascending.
    /// Files that do not match the canonical `<model>-v<n>.ckpt.json`
    /// naming (including other models' artifacts and temp files) are
    /// ignored; a missing directory is simply an empty list.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an invalid model id.
    pub fn list_versions(dir: impl AsRef<std::path::Path>, model: &str) -> NnResult<Vec<u32>> {
        // Validate the id through the same gate the writers use.
        let _ = Self::versioned_file_name(model, 1)?;
        let prefix = format!("{model}-v");
        let suffix = ".ckpt.json";
        let mut versions = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir.as_ref()) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(rest) = name.strip_prefix(&prefix) {
                    if let Some(num) = rest.strip_suffix(suffix) {
                        if let Ok(v) = num.parse::<u32>() {
                            if v > 0 {
                                versions.push(v);
                            }
                        }
                    }
                }
            }
        }
        versions.sort_unstable();
        versions.dedup();
        Ok(versions)
    }

    /// The newest version of `model` stored under `dir`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an invalid model id.
    pub fn latest_version(dir: impl AsRef<std::path::Path>, model: &str) -> NnResult<Option<u32>> {
        Ok(Self::list_versions(dir, model)?.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_micro_resnet18, MicroResNetConfig};
    use crate::{Act, Mode};
    use cuttlefish_tensor::svd::Svd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        build_micro_resnet18(
            &MicroResNetConfig::tiny(4),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn factorize_one(n: &mut Network, name: &str, rank: usize) {
        let w = n.weight_matrix(name).unwrap();
        let svd = Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(rank).unwrap();
        n.factorize_target(name, u, vt, false, None).unwrap();
    }

    #[test]
    fn roundtrip_dense_network() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        let mut b = net(2); // different init
        ckpt.restore(&mut b).unwrap();
        // Outputs now identical.
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut StdRng::seed_from_u64(3)),
            3,
            8,
            8,
        )
        .unwrap();
        let ya = a.forward(x.clone(), Mode::Eval).unwrap();
        let yb = b.forward(x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn roundtrip_factorized_network() {
        let mut a = net(1);
        factorize_one(&mut a, "s3.b0.conv1", 4);
        factorize_one(&mut a, "s4.b0.conv2", 6);
        let ckpt = Checkpoint::capture(&mut a);

        let mut b = net(9);
        ckpt.restore(&mut b).unwrap();
        assert_eq!(b.rank_of("s3.b0.conv1").unwrap(), Some(4));
        assert_eq!(b.rank_of("s4.b0.conv2").unwrap(), Some(6));
        assert_eq!(a.param_count(), b.param_count());
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(1, 3 * 64, 1.0, &mut StdRng::seed_from_u64(4)),
            3,
            8,
            8,
        )
        .unwrap();
        let ya = a.forward(x.clone(), Mode::Eval).unwrap();
        let yb = b.forward(x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn json_roundtrip() {
        let mut a = net(5);
        factorize_one(&mut a, "s2.b0.conv1", 3);
        let ckpt = Checkpoint::capture(&mut a);
        let json = ckpt.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(ckpt, back);
        assert!(Checkpoint::from_json("{not json").is_err());
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        let mut other = crate::models::build_micro_vgg19(
            &crate::models::MicroVggConfig::tiny(4),
            &mut StdRng::seed_from_u64(0),
        );
        assert!(ckpt.restore(&mut other).is_err());
    }

    #[test]
    fn mismatch_names_first_bad_param_and_loads_nothing() {
        let mut a = net(1);
        let ckpt = Checkpoint::capture(&mut a);
        // Same architecture family, same name, different classifier width:
        // rebuild with more classes so only the head shapes differ.
        let mut b =
            build_micro_resnet18(&MicroResNetConfig::tiny(7), &mut StdRng::seed_from_u64(3));
        let mut before = Vec::new();
        b.visit_params(&mut |p| before.push(p.value.clone()));
        let err = ckpt.restore(&mut b).unwrap_err();
        match err {
            NnError::CheckpointMismatch {
                param,
                checkpoint,
                network,
            } => {
                assert!(param.contains("fc"), "unexpected param name `{param}`");
                assert_ne!(checkpoint, network);
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // No parameter value was overwritten.
        let mut i = 0usize;
        b.visit_params(&mut |p| {
            assert_eq!(
                p.value, before[i],
                "param {i} was mutated by failed restore"
            );
            i += 1;
        });
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let mut a = net(11);
        factorize_one(&mut a, "s2.b0.conv1", 3);
        let ckpt = Checkpoint::capture(&mut a);
        let dir = std::env::temp_dir().join(format!("cuttlefish-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt.json");
        ckpt.save_to_path(&path).unwrap();
        // No temp-file droppings next to the final artifact.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let back = Checkpoint::load_from_path(&path).unwrap();
        assert_eq!(back, ckpt);

        // Missing file → CheckpointIo; corrupt file → CheckpointCorrupt.
        assert!(matches!(
            Checkpoint::load_from_path(dir.join("nope.json")),
            Err(NnError::CheckpointIo { .. })
        ));
        let truncated = dir.join("truncated.json");
        let full = ckpt.to_json().unwrap();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Checkpoint::load_from_path(&truncated),
            Err(NnError::CheckpointCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn versioned_naming_roundtrip_and_listing() {
        let mut a = net(21);
        let ckpt = Checkpoint::capture(&mut a);
        let dir = std::env::temp_dir().join(format!("cuttlefish-vers-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Missing directory lists as empty, not an error.
        assert_eq!(Checkpoint::list_versions(&dir, "resnet").unwrap(), vec![]);
        assert_eq!(Checkpoint::latest_version(&dir, "resnet").unwrap(), None);

        let p1 = ckpt.save_versioned(&dir, "resnet", 1).unwrap();
        let p3 = ckpt.save_versioned(&dir, "resnet", 3).unwrap();
        ckpt.save_versioned(&dir, "resnet-wide", 2).unwrap();
        assert!(p1.ends_with("resnet-v1.ckpt.json"));
        assert!(p3.ends_with("resnet-v3.ckpt.json"));
        // Listing sees only this model's artifacts, ascending; the
        // similarly-prefixed sibling model does not bleed in.
        assert_eq!(
            Checkpoint::list_versions(&dir, "resnet").unwrap(),
            vec![1, 3]
        );
        assert_eq!(Checkpoint::latest_version(&dir, "resnet").unwrap(), Some(3));
        assert_eq!(
            Checkpoint::list_versions(&dir, "resnet-wide").unwrap(),
            vec![2]
        );
        let back = Checkpoint::load_versioned(&dir, "resnet", 3).unwrap();
        assert_eq!(back, ckpt);

        // Typed naming rejections: empty id, separators, version 0.
        assert!(Checkpoint::versioned_file_name("", 1).is_err());
        assert!(Checkpoint::versioned_file_name("a/b", 1).is_err());
        assert!(Checkpoint::versioned_file_name("m", 0).is_err());
        assert!(ckpt.save_versioned(&dir, "m", 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_rank_conflicts() {
        let mut a = net(1);
        factorize_one(&mut a, "s3.b0.conv1", 4);
        let ckpt = Checkpoint::capture(&mut a);
        // Target already factored at a different rank.
        let mut b = net(1);
        factorize_one(&mut b, "s3.b0.conv1", 7);
        assert!(ckpt.restore(&mut b).is_err());
        // Dense checkpoint into factored net.
        let mut c = net(1);
        let dense_ckpt = Checkpoint::capture(&mut net(1));
        factorize_one(&mut c, "s3.b0.conv1", 4);
        assert!(dense_ckpt.restore(&mut c).is_err());
    }
}
