//! Optimizers: SGD with momentum and AdamW.
//!
//! Optimizer state lives inside each [`Param`]'s `slots`, so parameters
//! created mid-training (the `(U, Vᵀ)` factors at Cuttlefish's switching
//! epoch) simply start with fresh state — exactly what the paper's
//! implementation does by constructing a new optimizer after factorization.

use crate::Param;
use cuttlefish_tensor::Matrix;

/// A first-order optimizer stepping one parameter at a time.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update to `param` using its accumulated gradient and the
    /// given learning rate, then leaves the gradient untouched (callers zero
    /// gradients between steps).
    fn step(&mut self, param: &mut Param, lr: f32);
}

/// SGD with (optionally Nesterov-free) momentum and decoupled L2 weight
/// decay — the optimizer used for all CNN experiments in the paper
/// (momentum 0.9, weight decay 1e-4, decay disabled on BN parameters).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// L2 weight-decay coefficient, applied only to params with
    /// `weight_decay == true`.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the paper's defaults (0.9 / 1e-4).
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            momentum,
            weight_decay,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param: &mut Param, lr: f32) {
        let (r, c) = param.value.shape();
        // Effective gradient = grad + wd * value (L2, PyTorch-style coupled).
        let mut g = param.grad.clone();
        if self.weight_decay > 0.0 && param.weight_decay {
            g.axpy(self.weight_decay, &param.value)
                .expect("value/grad shapes agree");
        }
        if self.momentum > 0.0 {
            if param.slots.is_empty() {
                param.slots.push(Matrix::zeros(r, c));
            }
            let vel = &mut param.slots[0];
            vel.scale_in_place(self.momentum);
            vel.axpy(1.0, &g).expect("velocity shape matches");
            param.value.axpy(-lr, vel).expect("shapes agree");
        } else {
            param.value.axpy(-lr, &g).expect("shapes agree");
        }
    }
}

/// AdamW (decoupled weight decay), used by the paper for DeiT/ResMLP/BERT.
#[derive(Debug, Clone)]
pub struct AdamW {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    /// Step counter for bias correction (shared across params, incremented
    /// once per [`AdamW::next_step`]).
    t: u64,
}

impl AdamW {
    /// Creates AdamW with the standard (0.9, 0.999, 1e-8) moments.
    pub fn new(weight_decay: f32) -> Self {
        AdamW {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
        }
    }

    /// Advances the shared step counter; call once per optimization step
    /// (before stepping the parameters of that batch).
    pub fn next_step(&mut self) {
        self.t += 1;
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, param: &mut Param, lr: f32) {
        if self.t == 0 {
            self.t = 1;
        }
        let (r, c) = param.value.shape();
        while param.slots.len() < 2 {
            param.slots.push(Matrix::zeros(r, c));
        }
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        // Split borrows of the two slots.
        let (m_slot, rest) = param.slots.split_first_mut().expect("two slots exist");
        let v_slot = &mut rest[0];
        for idx in 0..r * c {
            let g = param.grad.as_slice()[idx];
            let m = &mut m_slot.as_mut_slice()[idx];
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let v = &mut v_slot.as_mut_slice()[idx];
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            let val = &mut param.value.as_mut_slice()[idx];
            let decay = if param.weight_decay {
                self.weight_decay
            } else {
                0.0
            };
            *val -= lr * (m_hat / (v_hat.sqrt() + self.eps) + decay * *val);
        }
    }
}

/// Clips the global gradient norm across a set of parameters to `max_norm`,
/// returning the pre-clip norm. Used to stabilize transformer training.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f64 = params.iter().map(|p| p.grad.frobenius_norm_sq()).sum();
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.scale_in_place(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param_with_grad(value: f32, grad: f32) -> Param {
        let mut p = Param::new(Matrix::from_rows(&[vec![value]]).unwrap());
        p.grad.set(0, 0, grad);
        p
    }

    #[test]
    fn sgd_plain_step() {
        let mut opt = Sgd::new(0.0, 0.0);
        let mut p = param_with_grad(1.0, 0.5);
        opt.step(&mut p, 0.1);
        assert!((p.value.get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::new(0.9, 0.0);
        let mut p = param_with_grad(0.0, 1.0);
        opt.step(&mut p, 1.0); // v = 1, x = -1
        p.grad.set(0, 0, 1.0);
        opt.step(&mut p, 1.0); // v = 1.9, x = -2.9
        assert!((p.value.get(0, 0) + 2.9).abs() < 1e-5);
    }

    #[test]
    fn sgd_weight_decay_respects_flag() {
        let mut opt = Sgd::new(0.0, 0.1);
        let mut decayed = param_with_grad(1.0, 0.0);
        opt.step(&mut decayed, 1.0);
        assert!((decayed.value.get(0, 0) - 0.9).abs() < 1e-6);

        let mut exempt = Param::new_no_decay(Matrix::from_rows(&[vec![1.0]]).unwrap());
        opt.step(&mut exempt, 1.0);
        assert_eq!(exempt.value.get(0, 0), 1.0);
    }

    #[test]
    fn adamw_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr·sign(grad).
        let mut opt = AdamW::new(0.0);
        opt.next_step();
        let mut p = param_with_grad(0.0, 0.3);
        opt.step(&mut p, 0.01);
        assert!((p.value.get(0, 0) + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adamw_decoupled_decay() {
        let mut opt = AdamW::new(0.5);
        opt.next_step();
        let mut p = param_with_grad(2.0, 0.0);
        opt.step(&mut p, 0.1);
        // No gradient: update is only −lr·wd·x = −0.1.
        assert!((p.value.get(0, 0) - 1.9).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p1 = param_with_grad(0.0, 3.0);
        let mut p2 = param_with_grad(0.0, 4.0);
        let norm = clip_grad_norm(&mut [&mut p1, &mut p2], 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let after: f32 = (p1.grad.get(0, 0).powi(2) + p2.grad.get(0, 0).powi(2)).sqrt();
        assert!((after - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_no_op_below_threshold() {
        let mut p = param_with_grad(0.0, 0.5);
        let norm = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(p.grad.get(0, 0), 0.5);
    }
}
