//! Static shape verification: symbolic shape inference over the layer graph.
//!
//! Cuttlefish discovers its switching hyperparameters instead of asking the
//! user to guess them — this module extends that philosophy to *structure*.
//! [`SymShape`] is a batch-symbolic activation shape (the batch dimension is
//! left abstract); every [`Layer`](crate::layers::Layer) implements
//! [`infer_shape`](crate::layers::Layer::infer_shape), the static mirror of
//! its `forward`, so a whole network can be checked for shape legality
//! without executing a single kernel. [`crate::Network::verify`] combines
//! this graph propagation with a scan of the factorization-target registry
//! (declared dims vs the actually stored weight, factor composition,
//! `1 ≤ r ≤ min(m, n)` rank legality) and returns a typed [`VerifyError`]
//! naming the offending layer — so a bad model or a stale rank plan is
//! rejected before the first FLOP instead of panicking 40 epochs in.
//!
//! The checker is intentionally *stricter* than runtime in one corner:
//! layers that read raw matrices without checking the activation kind (e.g.
//! `Embedding`, which treats any `(B, T)` matrix as token ids) only accept
//! the canonical kind here. A graph that passes `verify` runs; a graph that
//! fails may still limp through `forward` by accident, but is almost
//! certainly a bug.

use std::fmt;

/// A batch-symbolic activation shape: everything [`crate::ActKind`] tracks,
/// minus the concrete batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymShape {
    /// `(N, features)` — dense features or token-id matrices.
    Flat {
        /// Feature (column) count.
        features: usize,
    },
    /// `(N, channels·height·width)` channel-major image batches.
    Image {
        /// Channels.
        channels: usize,
        /// Height.
        height: usize,
        /// Width.
        width: usize,
    },
    /// `(N·tokens, dim)` token sequences.
    Seq {
        /// Tokens per sequence.
        tokens: usize,
        /// Feature dimension per token.
        dim: usize,
    },
}

impl SymShape {
    /// Column count of the backing matrix for this shape.
    pub fn width(&self) -> usize {
        match *self {
            SymShape::Flat { features } => features,
            SymShape::Image {
                channels,
                height,
                width,
            } => channels * height * width,
            SymShape::Seq { dim, .. } => dim,
        }
    }

    /// Human-readable kind name (`"flat"`, `"image"`, `"seq"`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            SymShape::Flat { .. } => "flat",
            SymShape::Image { .. } => "image",
            SymShape::Seq { .. } => "seq",
        }
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SymShape::Flat { features } => write!(f, "flat(N, {features})"),
            SymShape::Image {
                channels,
                height,
                width,
            } => write!(f, "image(N, {channels}x{height}x{width})"),
            SymShape::Seq { tokens, dim } => write!(f, "seq(N, {tokens} tokens x {dim})"),
        }
    }
}

/// A static verification failure, naming the offending layer or target.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A layer cannot accept the shape the graph propagates into it.
    Activation {
        /// Name of the rejecting layer.
        layer: String,
        /// The shape that reached the layer.
        input: SymShape,
        /// What the layer expected instead.
        detail: String,
    },
    /// A registered target's declared dims disagree with the weight the
    /// network actually stores.
    TargetShape {
        /// Target (weight) name.
        target: String,
        /// `(rows, cols)` the `TargetKind` declares.
        declared: (usize, usize),
        /// `(rows, cols)` of the stored dense matrix or `U·Vᵀ` product.
        stored: (usize, usize),
    },
    /// A factored target's rank is outside `1 ≤ r ≤ min(m, n)`.
    BadRank {
        /// Target (weight) name.
        target: String,
        /// The factorization rank in use.
        rank: usize,
        /// `min(m, n)` of the target's declared matrix.
        max: usize,
    },
    /// A factored target's `(U, Vᵀ)` pair does not compose to the declared
    /// `(m, n)` matrix — the swap would not be shape-preserving.
    BadFactors {
        /// Target (weight) name.
        target: String,
        /// Shape of `U`.
        u: (usize, usize),
        /// Shape of `Vᵀ`.
        vt: (usize, usize),
        /// The `(rows, cols)` the composition must reproduce.
        expected: (usize, usize),
    },
    /// A registered target has no corresponding weight in the graph.
    UnknownTarget {
        /// Target name that failed to resolve.
        target: String,
    },
    /// A layer type does not implement symbolic shape inference.
    Unsupported {
        /// Name of the uninferable layer.
        layer: String,
    },
}

impl VerifyError {
    /// The offending layer or target name — every variant carries one.
    pub fn layer(&self) -> &str {
        match self {
            VerifyError::Activation { layer, .. } | VerifyError::Unsupported { layer } => layer,
            VerifyError::TargetShape { target, .. }
            | VerifyError::BadRank { target, .. }
            | VerifyError::BadFactors { target, .. }
            | VerifyError::UnknownTarget { target } => target,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Activation {
                layer,
                input,
                detail,
            } => write!(f, "layer `{layer}` rejects input {input}: {detail}"),
            VerifyError::TargetShape {
                target,
                declared,
                stored,
            } => write!(
                f,
                "target `{target}` declares matrix shape {declared:?} but the stored weight is {stored:?}"
            ),
            VerifyError::BadRank { target, rank, max } => write!(
                f,
                "target `{target}` is factored at rank {rank}, outside 1..={max}"
            ),
            VerifyError::BadFactors {
                target,
                u,
                vt,
                expected,
            } => write!(
                f,
                "target `{target}` factors U {u:?} x Vt {vt:?} do not compose to {expected:?}"
            ),
            VerifyError::UnknownTarget { target } => {
                write!(f, "target `{target}` resolves to no weight in the graph")
            }
            VerifyError::Unsupported { layer } => {
                write!(f, "layer `{layer}` does not support symbolic shape inference")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Outcome of a successful [`crate::Network::verify`] run — what was proven
/// without executing a kernel. Its `Display` renders the human-readable
/// report the CLI's `--verify-only` mode prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Network name.
    pub network: String,
    /// Number of factorization targets checked against stored weights.
    pub targets_checked: usize,
    /// How many of those are currently in the factored state.
    pub factored_targets: usize,
    /// The declared input shape, when the model registered one.
    pub input: Option<SymShape>,
    /// The inferred output shape (present iff `input` is).
    pub output: Option<SymShape>,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network `{}`: statically verified", self.network)?;
        writeln!(
            f,
            "  targets: {} checked against stored weights ({} factored)",
            self.targets_checked, self.factored_targets
        )?;
        match (self.input, self.output) {
            (Some(i), Some(o)) => {
                writeln!(
                    f,
                    "  graph:   {i} -> {o} (inferred without kernel execution)"
                )
            }
            _ => writeln!(
                f,
                "  graph:   no input shape registered; propagation skipped"
            ),
        }
    }
}

/// Helper for layer `infer_shape` impls: builds the standard "wrong
/// activation" error.
pub(crate) fn reject(layer: &str, input: &SymShape, detail: impl Into<String>) -> VerifyError {
    VerifyError::Activation {
        layer: layer.to_string(),
        input: *input,
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_matches_backing_matrix() {
        assert_eq!(SymShape::Flat { features: 7 }.width(), 7);
        assert_eq!(
            SymShape::Image {
                channels: 3,
                height: 4,
                width: 5
            }
            .width(),
            60
        );
        assert_eq!(SymShape::Seq { tokens: 9, dim: 16 }.width(), 16);
    }

    #[test]
    fn error_names_offender() {
        let e = VerifyError::BadRank {
            target: "stack1.conv2".into(),
            rank: 12,
            max: 8,
        };
        assert_eq!(e.layer(), "stack1.conv2");
        assert!(e.to_string().contains("stack1.conv2"));
        assert!(e.to_string().contains("rank 12"));
    }

    #[test]
    fn report_renders_both_modes() {
        let mut r = VerifyReport {
            network: "m".into(),
            targets_checked: 3,
            factored_targets: 1,
            input: Some(SymShape::Image {
                channels: 3,
                height: 8,
                width: 8,
            }),
            output: Some(SymShape::Flat { features: 10 }),
        };
        let s = r.to_string();
        assert!(s.contains("statically verified"));
        assert!(s.contains("3 checked"));
        assert!(s.contains("flat(N, 10)"));
        r.input = None;
        r.output = None;
        assert!(r.to_string().contains("propagation skipped"));
    }
}
