use crate::layers::{Layer, Sequential};
use crate::optim::Optimizer;
use crate::shapecheck::{SymShape, VerifyError, VerifyReport};
use crate::weight::FactorableWeight;
use crate::{Act, Mode, NnError, NnResult, Param};
use cuttlefish_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// What kind of layer a factorization target is — used by the profiling
/// step (Algorithm 2) to compute arithmetic intensity, and by the rank
/// heuristics (transformer weights get the accumulative-rank fallback,
/// Appendix C.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetKind {
    /// A convolution, viewed as the unrolled `(in·k², out)` matrix.
    Conv {
        /// Input channels `m`.
        in_channels: usize,
        /// Output channels `n`.
        out_channels: usize,
        /// Square kernel size `k`.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Spatial size of the *input* feature map at the model's reference
        /// resolution — determines arithmetic intensity (§3.5).
        in_hw: (usize, usize),
    },
    /// A dense projection `(in, out)` — FC layers and each attention
    /// projection.
    Linear {
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
        /// Number of positions (tokens or 1 for flat heads) the projection
        /// is applied to per sample, for FLOP accounting.
        positions: usize,
        /// True for attention/FFN weights inside transformer blocks (these
        /// use the paper's Appendix C.2 rank rule).
        transformer: bool,
    },
}

/// One factorizable layer of a network, as seen by the Cuttlefish
/// controller: its addressable name, its layer stack (for Algorithm 2
/// profiling), its 1-based depth index `l` (the paper's layer numbering
/// where `l = 1` is the first layer and `l = L` the classifier), and its
/// shape info.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetInfo {
    /// Fully-qualified weight name (matches `visit_weights`).
    pub name: String,
    /// Stack id: 0 for the stem, 1.. for the body stacks, `last` for the
    /// classifier head.
    pub stack: usize,
    /// 1-based depth index `l ∈ {1, …, L}`.
    pub index: usize,
    /// Shape/kind details.
    pub kind: TargetKind,
}

impl TargetInfo {
    /// The `(rows, cols)` of the tracked 2-D weight matrix.
    pub fn matrix_shape(&self) -> (usize, usize) {
        match self.kind {
            TargetKind::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => (in_channels * kernel * kernel, out_channels),
            TargetKind::Linear {
                in_dim, out_dim, ..
            } => (in_dim, out_dim),
        }
    }

    /// `min(rows, cols)` — the paper's `rank(W)`.
    pub fn full_rank(&self) -> usize {
        let (r, c) = self.matrix_shape();
        r.min(c)
    }
}

/// A complete trainable model: a root layer graph plus the registry of
/// factorization targets that the Cuttlefish controller operates on.
#[derive(Debug)]
pub struct Network {
    name: String,
    root: Sequential,
    targets: Vec<TargetInfo>,
    input_shape: Option<SymShape>,
}

impl Network {
    /// Wraps a layer graph and validates the target registry: every
    /// registered target must correspond to a factorable weight with a
    /// matching shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownTarget`] for unresolvable names and
    /// [`NnError::BadConfig`] on shape disagreements.
    pub fn new(
        name: impl Into<String>,
        mut root: Sequential,
        targets: Vec<TargetInfo>,
    ) -> NnResult<Self> {
        let mut found: Vec<(String, usize, usize)> = Vec::new();
        root.visit_weights(&mut |n, w| {
            found.push((n.to_string(), w.in_dim(), w.out_dim()));
        });
        for t in &targets {
            let hit = found.iter().find(|(n, _, _)| n == &t.name);
            match hit {
                None => {
                    return Err(NnError::UnknownTarget {
                        name: t.name.clone(),
                    })
                }
                Some((_, in_dim, out_dim)) => {
                    if (*in_dim, *out_dim) != t.matrix_shape() {
                        return Err(NnError::BadConfig {
                            detail: format!(
                                "target `{}` declares shape {:?} but weight is ({in_dim}, {out_dim})",
                                t.name,
                                t.matrix_shape()
                            ),
                        });
                    }
                }
            }
        }
        Ok(Network {
            name: name.into(),
            root,
            targets,
            input_shape: None,
        })
    }

    /// Declares the symbolic per-sample input shape this model expects,
    /// enabling the graph-propagation half of [`Network::verify`]. The
    /// model builders set this automatically.
    pub fn set_input_shape(&mut self, shape: SymShape) {
        self.input_shape = Some(shape);
    }

    /// The declared symbolic input shape, if any.
    pub fn input_shape(&self) -> Option<SymShape> {
        self.input_shape
    }

    /// Statically verifies the model without executing any kernel.
    ///
    /// Three families of checks run, in order:
    ///
    /// 1. **Target registry** — every [`TargetInfo`] resolves to a weight,
    ///    and its declared [`TargetKind`] dims match the *actually stored*
    ///    matrix (re-read from live storage, so corruption through
    ///    `dense_mut` is caught even though the cached dims went stale).
    /// 2. **Factorization state** — for factored weights, `U` and `Vᵀ`
    ///    compose (`U.cols == Vᵀ.rows`, outer dims match the target) and
    ///    the rank satisfies `1 ≤ r ≤ min(m, n)`; the `U·Vᵀ` swap must be
    ///    shape-preserving.
    /// 3. **Graph propagation** — if an input shape was declared, the
    ///    symbolic shape is pushed through every layer's
    ///    [`Layer::infer_shape`], mirroring `forward` without touching
    ///    data.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] naming the offending layer; no kernels
    /// run and the model is left untouched.
    pub fn verify(&mut self) -> Result<VerifyReport, VerifyError> {
        /// Live-storage snapshot of one weight: name, stored `(m, n)`, and
        /// factor shapes when factored.
        struct Stored {
            name: String,
            shape: (usize, usize),
            factors: Option<((usize, usize), (usize, usize))>,
        }
        // Snapshot live storage shapes first; visit_weights needs &mut self.
        let mut stored: Vec<Stored> = Vec::new();
        self.visit_weights(&mut |n, w| {
            stored.push(Stored {
                name: n.to_string(),
                shape: w.stored_shape(),
                factors: w.factor_shapes(),
            });
        });
        let mut factored_targets = 0usize;
        for t in &self.targets {
            let declared = t.matrix_shape();
            let Some(s) = stored.iter().find(|s| s.name == t.name) else {
                return Err(VerifyError::UnknownTarget {
                    target: t.name.clone(),
                });
            };
            if s.shape != declared {
                return Err(VerifyError::TargetShape {
                    target: t.name.clone(),
                    declared,
                    stored: s.shape,
                });
            }
            if let Some((u, vt)) = s.factors {
                factored_targets += 1;
                let (m, n) = declared;
                if u.1 != vt.0 || u.0 != m || vt.1 != n {
                    return Err(VerifyError::BadFactors {
                        target: t.name.clone(),
                        u,
                        vt,
                        expected: declared,
                    });
                }
                let r = u.1;
                let max = m.min(n);
                if r == 0 || r > max {
                    return Err(VerifyError::BadRank {
                        target: t.name.clone(),
                        rank: r,
                        max,
                    });
                }
            }
        }
        let output = match self.input_shape {
            Some(input) => Some(self.root.infer_shape(&input)?),
            None => None,
        };
        Ok(VerifyReport {
            network: self.name.clone(),
            targets_checked: self.targets.len(),
            factored_targets,
            input: self.input_shape,
            output,
        })
    }

    /// Model name (e.g. `"micro-resnet18"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered factorization targets, in depth order.
    pub fn targets(&self) -> &[TargetInfo] {
        &self.targets
    }

    /// The total layer count `L` in the paper's numbering (targets only).
    pub fn depth(&self) -> usize {
        self.targets.len()
    }

    /// Runs the forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (wrong activation kinds etc.).
    pub fn forward(&mut self, x: Act, mode: Mode) -> NnResult<Act> {
        self.root.forward(x, mode)
    }

    /// Runs the backward pass from the loss gradient.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; requires a preceding train-mode forward.
    pub fn backward(&mut self, dy: Act) -> NnResult<Act> {
        self.root.backward(dy)
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.root.visit_params(f);
    }

    /// Visits every trainable parameter with a stable human-readable name,
    /// in [`Network::visit_params`] order. Leaf layers label their
    /// parameters `<layer>#<i>`; checkpoint restore uses the names to
    /// report shape mismatches precisely.
    pub fn visit_params_named(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.root.visit_params_named(f);
    }

    /// Visits every factorable weight with its name.
    pub fn visit_weights(&mut self, f: &mut dyn FnMut(&str, &mut FactorableWeight)) {
        self.root.visit_weights(f);
    }

    /// Visits every BatchNorm `(γ, β)` pair with the owning layer's name.
    pub fn visit_gammas(&mut self, f: &mut dyn FnMut(&str, &mut Param, &mut Param)) {
        self.root.visit_gammas(f);
    }

    /// Total trainable scalar count in the current (full or factored) state.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0usize;
        self.visit_params(&mut |p| n += p.count());
        n
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Name and `(rows, cols)` shape of every trainable parameter in
    /// [`Network::visit_params`] order.
    ///
    /// This is the parameter schema a distributed gradient exchange agrees
    /// on: identical replicas produce identical spec lists, and the list
    /// changes in lockstep when all workers apply the same rank plan.
    pub fn param_specs(&mut self) -> Vec<(String, (usize, usize))> {
        let mut specs = Vec::new();
        self.visit_params_named(&mut |name, p| {
            specs.push((name.to_string(), p.value.shape()));
        });
        specs
    }

    /// Clones every parameter gradient in [`Network::visit_params`] order.
    ///
    /// Paired with [`Network::load_grads`] this gives data-parallel workers
    /// a stable flat view of the gradient without exposing layer internals.
    pub fn collect_grads(&mut self) -> Vec<Matrix> {
        let mut grads = Vec::new();
        self.visit_params(&mut |p| grads.push(p.grad.clone()));
        grads
    }

    /// Overwrites every parameter gradient from a flat list produced by
    /// [`Network::collect_grads`] (possibly reduced across workers).
    ///
    /// All shapes are validated against the live parameters before any
    /// gradient is mutated, so a failed call leaves the network unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] naming the offending parameter when
    /// the count or any shape disagrees.
    pub fn load_grads(&mut self, grads: &[Matrix]) -> NnResult<()> {
        let specs = self.param_specs();
        if specs.len() != grads.len() {
            return Err(NnError::BadConfig {
                detail: format!(
                    "gradient list has {} entries, network has {} parameters",
                    grads.len(),
                    specs.len()
                ),
            });
        }
        for ((name, shape), g) in specs.iter().zip(grads) {
            if g.shape() != *shape {
                return Err(NnError::BadConfig {
                    detail: format!(
                        "gradient for {name} has shape {:?}, parameter is {:?}",
                        g.shape(),
                        shape
                    ),
                });
            }
        }
        let mut idx = 0usize;
        self.visit_params(&mut |p| {
            p.grad = grads[idx].clone();
            idx += 1;
        });
        Ok(())
    }

    /// Adds Frobenius-decay gradients on every factored weight that has FD
    /// enabled.
    ///
    /// # Errors
    ///
    /// Propagates the first tensor error from any weight (possible only
    /// with corrupted factor shapes).
    pub fn apply_frobenius_decay(&mut self) -> NnResult<()> {
        let mut first_err: Option<NnError> = None;
        self.visit_weights(&mut |_, w| {
            if first_err.is_none() {
                if let Err(e) = w.apply_frobenius_decay() {
                    first_err = Some(e);
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Steps every parameter with the given optimizer and learning rate.
    pub fn step(&mut self, opt: &mut dyn Optimizer, lr: f32) {
        self.visit_params(&mut |p| opt.step(p, lr));
    }

    /// The effective 2-D weight matrix of a target (dense `W`, or `U·Vᵀ`
    /// when factored).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownTarget`] for unknown names.
    pub fn weight_matrix(&mut self, target: &str) -> NnResult<Matrix> {
        let mut out = None;
        self.visit_weights(&mut |n, w| {
            if n == target {
                out = Some(w.effective());
            }
        });
        out.ok_or_else(|| NnError::UnknownTarget {
            name: target.to_string(),
        })?
    }

    /// Whether the named target is currently factored.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownTarget`] for unknown names.
    pub fn is_factored(&mut self, target: &str) -> NnResult<bool> {
        let mut out = None;
        self.visit_weights(&mut |n, w| {
            if n == target {
                out = Some(w.is_factored());
            }
        });
        out.ok_or_else(|| NnError::UnknownTarget {
            name: target.to_string(),
        })
    }

    /// Current factorization rank of the named target (`None` if dense).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownTarget`] for unknown names.
    pub fn rank_of(&mut self, target: &str) -> NnResult<Option<usize>> {
        let mut out = None;
        let mut hit = false;
        self.visit_weights(&mut |n, w| {
            if n == target {
                hit = true;
                out = w.rank();
            }
        });
        if hit {
            Ok(out)
        } else {
            Err(NnError::UnknownTarget {
                name: target.to_string(),
            })
        }
    }

    /// Replaces the named target's dense weight with the `(U, Vᵀ)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownTarget`] for unknown names or shape errors
    /// from the underlying weight.
    pub fn factorize_target(
        &mut self,
        target: &str,
        u: Matrix,
        vt: Matrix,
        extra_bn: bool,
        frobenius_decay: Option<f32>,
    ) -> NnResult<()> {
        let mut result: Option<NnResult<()>> = None;
        // set_factored consumes the matrices, so thread them through an
        // Option to satisfy the FnMut closure.
        let mut payload = Some((u, vt));
        self.visit_weights(&mut |n, w| {
            if n == target {
                if let Some((u, vt)) = payload.take() {
                    result = Some(w.set_factored(u, vt, extra_bn, frobenius_decay));
                }
            }
        });
        result.unwrap_or_else(|| {
            Err(NnError::UnknownTarget {
                name: target.to_string(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_layer_net(rng: &mut StdRng) -> Network {
        let root = Sequential::new("net")
            .push(Linear::new("fc1", 4, 8, false, rng))
            .push(Relu::new("relu"))
            .push(Linear::new("fc2", 8, 2, false, rng));
        let targets = vec![
            TargetInfo {
                name: "fc1".into(),
                stack: 0,
                index: 1,
                kind: TargetKind::Linear {
                    in_dim: 4,
                    out_dim: 8,
                    positions: 1,
                    transformer: false,
                },
            },
            TargetInfo {
                name: "fc2".into(),
                stack: 1,
                index: 2,
                kind: TargetKind::Linear {
                    in_dim: 8,
                    out_dim: 2,
                    positions: 1,
                    transformer: false,
                },
            },
        ];
        Network::new("mlp", root, targets).unwrap()
    }

    #[test]
    fn registry_validation_catches_unknown_and_bad_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let root = Sequential::new("net").push(Linear::new("fc1", 4, 8, false, &mut rng));
        let bad_name = vec![TargetInfo {
            name: "nope".into(),
            stack: 0,
            index: 1,
            kind: TargetKind::Linear {
                in_dim: 4,
                out_dim: 8,
                positions: 1,
                transformer: false,
            },
        }];
        assert!(matches!(
            Network::new("m", root, bad_name),
            Err(NnError::UnknownTarget { .. })
        ));

        let root = Sequential::new("net").push(Linear::new("fc1", 4, 8, false, &mut rng));
        let bad_shape = vec![TargetInfo {
            name: "fc1".into(),
            stack: 0,
            index: 1,
            kind: TargetKind::Linear {
                in_dim: 5,
                out_dim: 8,
                positions: 1,
                transformer: false,
            },
        }];
        assert!(matches!(
            Network::new("m", root, bad_shape),
            Err(NnError::BadConfig { .. })
        ));
    }

    #[test]
    fn weight_matrix_and_factorize_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = two_layer_net(&mut rng);
        let w = net.weight_matrix("fc1").unwrap();
        assert_eq!(w.shape(), (4, 8));
        assert!(!net.is_factored("fc1").unwrap());
        assert_eq!(net.rank_of("fc1").unwrap(), None);

        let svd = cuttlefish_tensor::svd::Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(2).unwrap();
        net.factorize_target("fc1", u, vt, false, None).unwrap();
        assert!(net.is_factored("fc1").unwrap());
        assert_eq!(net.rank_of("fc1").unwrap(), Some(2));
        // Effective matrix is now the rank-2 truncation.
        let eff = net.weight_matrix("fc1").unwrap();
        let trunc = svd.reconstruct_rank(2);
        assert!(eff.sub(&trunc).unwrap().frobenius_norm() < 1e-4);
    }

    #[test]
    fn unknown_target_errors() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = two_layer_net(&mut rng);
        assert!(net.weight_matrix("nope").is_err());
        assert!(net.is_factored("nope").is_err());
        assert!(net.rank_of("nope").is_err());
        assert!(net
            .factorize_target(
                "nope",
                Matrix::zeros(1, 1),
                Matrix::zeros(1, 1),
                false,
                None
            )
            .is_err());
    }

    #[test]
    fn param_count_drops_after_factorization() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = two_layer_net(&mut rng);
        let before = net.param_count();
        assert_eq!(before, 4 * 8 + 8 * 2);
        let w = net.weight_matrix("fc1").unwrap();
        let svd = cuttlefish_tensor::svd::Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(1).unwrap();
        net.factorize_target("fc1", u, vt, false, None).unwrap();
        assert_eq!(net.param_count(), 4 + 8 + 16);
    }

    #[test]
    fn verify_accepts_well_formed_network() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = two_layer_net(&mut rng);
        net.set_input_shape(SymShape::Flat { features: 4 });
        let report = net.verify().unwrap();
        assert_eq!(report.targets_checked, 2);
        assert_eq!(report.factored_targets, 0);
        assert_eq!(report.output, Some(SymShape::Flat { features: 2 }));
    }

    #[test]
    fn verify_rejects_rank_above_min_dim() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = two_layer_net(&mut rng);
        // fc2 is (8, 2): rank 3 > min(8, 2) = 2 composes fine (8,3)·(3,2)
        // so set_factored accepts it — only verify() rejects it.
        net.factorize_target("fc2", Matrix::zeros(8, 3), Matrix::zeros(3, 2), false, None)
            .unwrap();
        let err = net.verify().unwrap_err();
        assert_eq!(err.layer(), "fc2");
        assert!(matches!(
            err,
            VerifyError::BadRank {
                rank: 3,
                max: 2,
                ..
            }
        ));
    }

    #[test]
    fn verify_rejects_weight_corrupted_through_dense_mut() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = two_layer_net(&mut rng);
        // Swap fc1's storage for a wrong-shape matrix; the cached
        // in_dim/out_dim go stale, so only stored_shape() sees it.
        net.visit_weights(&mut |n, w| {
            if n == "fc1" {
                if let Some(m) = w.dense_mut() {
                    *m = Matrix::zeros(3, 8);
                }
            }
        });
        let err = net.verify().unwrap_err();
        assert_eq!(err.layer(), "fc1");
        assert!(matches!(
            err,
            VerifyError::TargetShape {
                declared: (4, 8),
                stored: (3, 8),
                ..
            }
        ));
    }

    #[test]
    fn verify_rejects_shape_mismatched_graph() {
        let mut rng = StdRng::seed_from_u64(8);
        // fc2 consumes 5 features but fc1 produces 8.
        let root = Sequential::new("net")
            .push(Linear::new("fc1", 4, 8, false, &mut rng))
            .push(Linear::new("fc2", 5, 2, false, &mut rng));
        let mut net = Network::new("mlp", root, Vec::new()).unwrap();
        net.set_input_shape(SymShape::Flat { features: 4 });
        let err = net.verify().unwrap_err();
        assert_eq!(err.layer(), "fc2");
        assert!(matches!(err, VerifyError::Activation { .. }));
    }

    #[test]
    fn verify_without_input_shape_skips_graph_pass() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = two_layer_net(&mut rng);
        let report = net.verify().unwrap();
        assert_eq!(report.input, None);
        assert_eq!(report.output, None);
    }

    #[test]
    fn train_step_reduces_loss() {
        use crate::loss::cross_entropy;
        use crate::optim::Sgd;
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = two_layer_net(&mut rng);
        let x = cuttlefish_tensor::init::randn_matrix(8, 4, 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut opt = Sgd::new(0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let logits = net.forward(Act::flat(x.clone()), Mode::Train).unwrap();
            let (loss, grad) = cross_entropy(logits.data(), &labels, 0.0).unwrap();
            net.backward(Act::flat(grad)).unwrap();
            net.step(&mut opt, 0.1);
            net.zero_grads();
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "{last} vs {first:?}");
    }

    #[test]
    fn grad_collect_load_roundtrip_and_validation() {
        use crate::loss::cross_entropy;
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = two_layer_net(&mut rng);
        let x = cuttlefish_tensor::init::randn_matrix(4, 4, 1.0, &mut rng);
        let labels = vec![0usize, 1, 0, 1];
        let logits = net.forward(Act::flat(x), Mode::Train).unwrap();
        let (_, grad) = cross_entropy(logits.data(), &labels, 0.0).unwrap();
        net.backward(Act::flat(grad)).unwrap();

        let specs = net.param_specs();
        let grads = net.collect_grads();
        assert_eq!(specs.len(), grads.len());
        assert!(grads.iter().any(|g| g.frobenius_norm() > 0.0));
        for ((_, shape), g) in specs.iter().zip(&grads) {
            assert_eq!(*shape, g.shape());
        }

        // Scaled grads load back exactly.
        let scaled: Vec<Matrix> = grads.iter().map(|g| g.scale(0.5)).collect();
        net.load_grads(&scaled).unwrap();
        assert_eq!(net.collect_grads(), scaled);

        // Wrong count and wrong shape are rejected without mutating.
        assert!(matches!(
            net.load_grads(&scaled[1..]),
            Err(NnError::BadConfig { .. })
        ));
        let mut bad = scaled.clone();
        bad[0] = Matrix::zeros(1, 1);
        assert!(matches!(
            net.load_grads(&bad),
            Err(NnError::BadConfig { .. })
        ));
        assert_eq!(net.collect_grads(), scaled);
    }
}
