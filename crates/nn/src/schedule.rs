//! Learning-rate schedules.
//!
//! The paper uses two schedules: linear warmup into multi-step decay (the
//! Goyal et al. large-minibatch recipe for CIFAR/SVHN/ImageNet CNNs, with
//! decay at 50% / 75% of training) and cosine decay with warmup (the DeiT
//! recipe for transformers/mixers). Cuttlefish additionally decays the base
//! LR by a constant fraction at the full→low-rank switch for DeiT/ResMLP
//! (Appendix C.2), supported here via [`LrSchedule::with_scale`].

use serde::{Deserialize, Serialize};

/// A learning-rate schedule mapping an epoch index to a learning rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Linear warmup from `base_lr` to `peak_lr` over `warmup_epochs`, then
    /// multiplicative decay by `gamma` at each milestone epoch.
    WarmupMultiStep {
        /// Starting LR for the warmup ramp.
        base_lr: f32,
        /// LR reached at the end of warmup.
        peak_lr: f32,
        /// Number of warmup epochs.
        warmup_epochs: usize,
        /// Epochs at which the LR is multiplied by `gamma`.
        milestones: Vec<usize>,
        /// Decay factor per milestone.
        gamma: f32,
    },
    /// Linear warmup then cosine decay to `min_lr` at `total_epochs`.
    WarmupCosine {
        /// LR reached at the end of warmup.
        peak_lr: f32,
        /// Floor of the cosine decay.
        min_lr: f32,
        /// Number of warmup epochs.
        warmup_epochs: usize,
        /// Total training epochs.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// The Goyal et al. recipe used for the paper's CIFAR/SVHN runs:
    /// warm up from 0.1 to `peak` over 5 epochs, decay 10× at 50% and 75%.
    ///
    /// # Example
    ///
    /// ```
    /// use cuttlefish_nn::schedule::LrSchedule;
    /// let s = LrSchedule::goyal(0.8, 300);
    /// assert!((s.lr_at(10) - 0.8).abs() < 1e-6);   // post-warmup peak
    /// assert!((s.lr_at(150) - 0.08).abs() < 1e-6); // first decay
    /// ```
    pub fn goyal(peak: f32, total_epochs: usize) -> Self {
        LrSchedule::WarmupMultiStep {
            base_lr: peak / 8.0,
            peak_lr: peak,
            warmup_epochs: 5,
            milestones: vec![total_epochs / 2, total_epochs * 3 / 4],
            gamma: 0.1,
        }
    }

    /// Learning rate at the given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::WarmupMultiStep {
                base_lr,
                peak_lr,
                warmup_epochs,
                milestones,
                gamma,
            } => {
                if epoch < *warmup_epochs {
                    let frac = (epoch + 1) as f32 / *warmup_epochs as f32;
                    base_lr + (peak_lr - base_lr) * frac
                } else {
                    let decays = milestones.iter().filter(|&&m| epoch >= m).count() as i32;
                    peak_lr * gamma.powi(decays)
                }
            }
            LrSchedule::WarmupCosine {
                peak_lr,
                min_lr,
                warmup_epochs,
                total_epochs,
            } => {
                if epoch < *warmup_epochs {
                    peak_lr * (epoch + 1) as f32 / *warmup_epochs as f32
                } else {
                    let span = total_epochs.saturating_sub(*warmup_epochs).max(1) as f32;
                    let progress = ((epoch - warmup_epochs) as f32 / span).min(1.0);
                    min_lr
                        + (peak_lr - min_lr) * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
        }
    }

    /// Statically validates the schedule's parameters: learning rates must
    /// be finite and positive and multi-step milestones strictly
    /// increasing (a repeated or out-of-order milestone silently changes
    /// the decay count at `lr_at`, so it is refused up front).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        fn positive(name: &str, v: f32) -> Result<(), String> {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and > 0, got {v}"));
            }
            Ok(())
        }
        match self {
            LrSchedule::Constant { lr } => positive("lr", *lr),
            LrSchedule::WarmupMultiStep {
                base_lr,
                peak_lr,
                milestones,
                gamma,
                ..
            } => {
                positive("base_lr", *base_lr)?;
                positive("peak_lr", *peak_lr)?;
                positive("gamma", *gamma)?;
                for pair in milestones.windows(2) {
                    if pair[1] <= pair[0] {
                        return Err(format!(
                            "milestones must be strictly increasing, got {} after {}",
                            pair[1], pair[0]
                        ));
                    }
                }
                Ok(())
            }
            LrSchedule::WarmupCosine {
                peak_lr, min_lr, ..
            } => {
                positive("peak_lr", *peak_lr)?;
                if !min_lr.is_finite() || *min_lr < 0.0 {
                    return Err(format!("min_lr must be finite and >= 0, got {min_lr}"));
                }
                if min_lr > peak_lr {
                    return Err(format!("min_lr {min_lr} exceeds peak_lr {peak_lr}"));
                }
                Ok(())
            }
        }
    }

    /// Returns the same schedule with every produced LR multiplied by
    /// `scale` — used for the paper's post-switch base-LR decay on
    /// DeiT/ResMLP (Appendix C.2).
    #[must_use]
    pub fn with_scale(&self, scale: f32) -> ScaledSchedule {
        ScaledSchedule {
            inner: self.clone(),
            scale,
        }
    }
}

/// A schedule with a multiplicative scale applied, see
/// [`LrSchedule::with_scale`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaledSchedule {
    inner: LrSchedule,
    scale: f32,
}

impl ScaledSchedule {
    /// Learning rate at the given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.inner.lr_at(epoch) * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = LrSchedule::Constant { lr: 0.3 };
        assert_eq!(s.lr_at(0), 0.3);
        assert_eq!(s.lr_at(100), 0.3);
    }

    #[test]
    fn goyal_warms_up_then_decays() {
        let s = LrSchedule::goyal(0.8, 300);
        // During warmup LR rises.
        assert!(s.lr_at(0) < s.lr_at(4));
        // Peak after warmup.
        assert!((s.lr_at(5) - 0.8).abs() < 1e-6);
        // First decay at 150.
        assert!((s.lr_at(149) - 0.8).abs() < 1e-6);
        assert!((s.lr_at(150) - 0.08).abs() < 1e-6);
        // Second decay at 225.
        assert!((s.lr_at(225) - 0.008).abs() < 1e-6);
    }

    #[test]
    fn warmup_reaches_peak_exactly() {
        let s = LrSchedule::WarmupMultiStep {
            base_lr: 0.1,
            peak_lr: 0.8,
            warmup_epochs: 5,
            milestones: vec![],
            gamma: 0.1,
        };
        assert!((s.lr_at(4) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_min() {
        let s = LrSchedule::WarmupCosine {
            peak_lr: 1.0,
            min_lr: 0.01,
            warmup_epochs: 2,
            total_epochs: 12,
        };
        assert!(s.lr_at(0) < s.lr_at(1));
        assert!((s.lr_at(1) - 1.0).abs() < 1e-6);
        // Monotone decay after warmup.
        assert!(s.lr_at(5) > s.lr_at(9));
        // Clamped at the end.
        assert!((s.lr_at(11) - 0.01).abs() < 0.05);
        assert!((s.lr_at(500) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn scaled_schedule_multiplies() {
        let s = LrSchedule::Constant { lr: 0.6 }.with_scale(0.5);
        assert!((s.lr_at(7) - 0.3).abs() < 1e-7);
    }

    #[test]
    fn validate_accepts_paper_recipes() {
        assert!(LrSchedule::goyal(0.8, 300).validate().is_ok());
        assert!(LrSchedule::WarmupCosine {
            peak_lr: 3e-3,
            min_lr: 1e-5,
            warmup_epochs: 5,
            total_epochs: 50,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_non_monotone_milestones() {
        let s = LrSchedule::WarmupMultiStep {
            base_lr: 0.1,
            peak_lr: 0.8,
            warmup_epochs: 5,
            milestones: vec![150, 150],
            gamma: 0.1,
        };
        assert!(s.validate().unwrap_err().contains("strictly increasing"));
        let s = LrSchedule::WarmupMultiStep {
            base_lr: 0.1,
            peak_lr: 0.8,
            warmup_epochs: 5,
            milestones: vec![225, 150],
            gamma: 0.1,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(LrSchedule::Constant { lr: 0.0 }.validate().is_err());
        assert!(LrSchedule::Constant { lr: f32::NAN }.validate().is_err());
        assert!(LrSchedule::WarmupCosine {
            peak_lr: 1e-4,
            min_lr: 1e-2,
            warmup_epochs: 1,
            total_epochs: 10,
        }
        .validate()
        .is_err());
    }
}
