use cuttlefish_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for neural-network construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an activation of the wrong kind or shape.
    BadActivation {
        /// The layer that rejected the activation.
        layer: String,
        /// What the layer expected vs. what it got.
        detail: String,
    },
    /// `backward` was called without a preceding `forward` in train mode,
    /// or a required cache is missing.
    MissingCache {
        /// The layer whose cache was missing.
        layer: String,
    },
    /// A configuration value was invalid (zero dims, bad rank, …).
    BadConfig {
        /// Explanation of the invalid configuration.
        detail: String,
    },
    /// A named factorization target does not exist in the network.
    UnknownTarget {
        /// The name that failed to resolve.
        name: String,
    },
    /// A checkpoint parameter's shape disagrees with the live network.
    /// Restore validates *every* parameter shape before loading any value,
    /// so this error means no parameter value was overwritten (the factor
    /// layout may already have been recreated).
    CheckpointMismatch {
        /// Fully-qualified name of the first mismatched parameter.
        param: String,
        /// Shape stored in the checkpoint.
        checkpoint: (usize, usize),
        /// Shape of the live parameter.
        network: (usize, usize),
    },
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A checkpoint file exists but is partial or corrupt (does not parse
    /// back into a [`crate::checkpoint::Checkpoint`]).
    CheckpointCorrupt {
        /// The path involved.
        path: String,
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadActivation { layer, detail } => {
                write!(f, "bad activation for layer `{layer}`: {detail}")
            }
            NnError::MissingCache { layer } => {
                write!(
                    f,
                    "backward called on `{layer}` without cached forward state"
                )
            }
            NnError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            NnError::UnknownTarget { name } => {
                write!(f, "unknown factorization target `{name}`")
            }
            NnError::CheckpointMismatch {
                param,
                checkpoint,
                network,
            } => {
                write!(
                    f,
                    "checkpoint parameter `{param}` has shape {checkpoint:?} but the live network expects {network:?}"
                )
            }
            NnError::CheckpointIo { path, detail } => {
                write!(f, "checkpoint I/O failed for `{path}`: {detail}")
            }
            NnError::CheckpointCorrupt { path, detail } => {
                write!(
                    f,
                    "checkpoint file `{path}` is partial or corrupt: {detail}"
                )
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts_and_sources() {
        let te = TensorError::InvalidDimension {
            op: "x",
            detail: "d".into(),
        };
        let ne: NnError = te.clone().into();
        assert!(ne.to_string().contains("tensor error"));
        assert!(ne.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
