//! Micro model zoo: laptop-scale versions of the paper's architectures.
//!
//! Each builder keeps the original **topology** — stack structure, stride
//! pattern, residual wiring, block counts — while scaling widths and input
//! resolution down so full training runs complete in seconds. The builders
//! also register every factorizable layer as a [`TargetInfo`] so the
//! Cuttlefish controller can track and factorize them by name.
//!
//! | Paper model | Builder | Topology kept |
//! |---|---|---|
//! | ResNet-18 | [`build_micro_resnet18`] | 4 stacks of basic blocks, strides 1,2,2,2 |
//! | ResNet-50 | [`build_micro_resnet50`] | bottleneck blocks, expansion 4 |
//! | WideResNet-50-2 | [`build_micro_wide_resnet50`] | bottleneck with doubled inner width |
//! | VGG-19-BN | [`build_micro_vgg19`] | 16 convs + classifier, pools between stacks |
//! | DeiT | [`build_micro_deit`] | patch embed, pre-LN MHA/FFN blocks |
//! | ResMLP | [`build_micro_mixer`] | token-mixing + channel-MLP blocks |
//! | BERT | [`build_micro_bert`] | token+pos embeddings, encoder blocks, CLS/MLM heads |

mod bert;
mod mixer;
mod resnet;
mod transformer;
mod vgg;

pub use bert::{build_micro_bert, BertHead, MicroBertConfig};
pub use mixer::{build_micro_mixer, MicroMixerConfig};
pub use resnet::{
    build_micro_resnet18, build_micro_resnet50, build_micro_wide_resnet50, MicroResNetConfig,
};
pub use transformer::{build_micro_deit, MicroDeiTConfig};
pub use vgg::{build_micro_vgg19, MicroVggConfig};

use crate::{TargetInfo, TargetKind};

/// Incrementally builds the factorization-target registry while a model is
/// being constructed, assigning the paper's 1-based depth indices in
/// construction order.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    targets: Vec<TargetInfo>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    #[allow(clippy::too_many_arguments)] // mirrors the conv layer signature
    pub(crate) fn conv(
        &mut self,
        name: impl Into<String>,
        stack: usize,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        in_hw: (usize, usize),
    ) {
        let index = self.targets.len() + 1;
        self.targets.push(TargetInfo {
            name: name.into(),
            stack,
            index,
            kind: TargetKind::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                in_hw,
            },
        });
    }

    pub(crate) fn linear(
        &mut self,
        name: impl Into<String>,
        stack: usize,
        in_dim: usize,
        out_dim: usize,
        positions: usize,
        transformer: bool,
    ) {
        let index = self.targets.len() + 1;
        self.targets.push(TargetInfo {
            name: name.into(),
            stack,
            index,
            kind: TargetKind::Linear {
                in_dim,
                out_dim,
                positions,
                transformer,
            },
        });
    }

    pub(crate) fn finish(self) -> Vec<TargetInfo> {
        self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_sequential_indices() {
        let mut r = Registry::new();
        r.conv("a", 0, 3, 8, 3, 1, (8, 8));
        r.linear("b", 1, 8, 2, 1, false);
        let t = r.finish();
        assert_eq!(t[0].index, 1);
        assert_eq!(t[1].index, 2);
        assert_eq!(t[0].matrix_shape(), (27, 8));
        assert_eq!(t[1].matrix_shape(), (8, 2));
        assert_eq!(t[0].full_rank(), 8);
    }
}
