use super::Registry;
use crate::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential};
use crate::Network;
use cuttlefish_tensor::im2col::ConvGeometry;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the micro VGG-19-BN.
///
/// Keeps the paper's Table 7 layout — 16 convolutions in 5 width groups
/// with pooling between them, average pool before a single classifier —
/// scaled by `width_div`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroVggConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input resolution.
    pub image_hw: (usize, usize),
    /// Divide every width in the original layout (64..512) by this.
    pub width_div: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl MicroVggConfig {
    /// Smallest usable config for tests: 8×8 inputs, widths /8.
    pub fn tiny(num_classes: usize) -> Self {
        MicroVggConfig {
            in_channels: 3,
            image_hw: (8, 8),
            width_div: 8,
            num_classes,
        }
    }

    /// CIFAR-scale config: 16×16 inputs, widths /4 (16..128).
    pub fn cifar(num_classes: usize) -> Self {
        MicroVggConfig {
            in_channels: 3,
            image_hw: (16, 16),
            width_div: 4,
            num_classes,
        }
    }
}

/// The original VGG-19 width plan: `(width, convs in group)`.
const GROUPS: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];

/// Builds a micro VGG-19-BN.
pub fn build_micro_vgg19(cfg: &MicroVggConfig, rng: &mut impl Rng) -> Network {
    let mut reg = Registry::new();
    let mut root = Sequential::new("micro-vgg19");
    let mut in_c = cfg.in_channels;
    let mut hw = cfg.image_hw;
    let mut conv_idx = 0usize;
    for (stack, &(width, nconvs)) in GROUPS.iter().enumerate() {
        let out_c = (width / cfg.width_div).max(2);
        for _ in 0..nconvs {
            conv_idx += 1;
            let name = format!("conv{conv_idx}");
            let geom = ConvGeometry {
                in_channels: in_c,
                out_channels: out_c,
                kernel: 3,
                stride: 1,
                padding: 1,
            };
            reg.conv(&name, stack, in_c, out_c, 3, 1, hw);
            root.add(Box::new(Conv2d::new(&name, geom, false, rng)));
            root.add(Box::new(BatchNorm2d::new(format!("bn{conv_idx}"), out_c)));
            root.add(Box::new(Relu::new(format!("relu{conv_idx}"))));
            in_c = out_c;
        }
        // Pool between groups while spatial room remains; the paper's last
        // pool is an average pool, realized here by the global pool below.
        if stack < GROUPS.len() - 1 && hw.0 >= 2 && hw.1 >= 2 {
            root.add(Box::new(MaxPool2d::new(format!("pool{stack}"), 2, 2)));
            hw = (hw.0 / 2, hw.1 / 2);
        }
    }
    root.add(Box::new(GlobalAvgPool::new("avgpool")));
    reg.linear("classifier", GROUPS.len(), in_c, cfg.num_classes, 1, false);
    root.add(Box::new(Linear::new(
        "classifier",
        in_c,
        cfg.num_classes,
        true,
        rng,
    )));
    let mut net = Network::new("micro-vgg19", root, reg.finish())
        .expect("builder registers every target it creates");
    net.set_input_shape(crate::SymShape::Image {
        channels: cfg.in_channels,
        height: cfg.image_hw.0,
        width: cfg.image_hw.1,
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Mode, TargetKind};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vgg_has_sixteen_convs_plus_classifier() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_micro_vgg19(&MicroVggConfig::cifar(10), &mut rng);
        assert_eq!(net.targets().len(), 17);
        assert_eq!(net.targets().last().unwrap().name, "classifier");
        let convs = net
            .targets()
            .iter()
            .filter(|t| matches!(t.kind, TargetKind::Conv { .. }))
            .count();
        assert_eq!(convs, 16);
    }

    #[test]
    fn vgg_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_micro_vgg19(&MicroVggConfig::tiny(5), &mut rng);
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut rng),
            3,
            8,
            8,
        )
        .unwrap();
        let y = net.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().shape(), (2, 5));
        let dx = net.backward(Act::flat(Matrix::zeros(2, 5))).unwrap();
        assert_eq!(dx.data().shape(), (2, 3 * 64));
    }

    #[test]
    fn widths_follow_original_plan() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = build_micro_vgg19(&MicroVggConfig::cifar(10), &mut rng);
        let out_c_of = |name: &str| {
            net.targets()
                .iter()
                .find(|t| t.name == name)
                .map(|t| match t.kind {
                    TargetKind::Conv { out_channels, .. } => out_channels,
                    _ => unreachable!(),
                })
                .unwrap()
        };
        assert_eq!(out_c_of("conv1"), 16); // 64/4
        assert_eq!(out_c_of("conv3"), 32); // 128/4
        assert_eq!(out_c_of("conv5"), 64); // 256/4
        assert_eq!(out_c_of("conv16"), 128); // 512/4
    }

    #[test]
    fn stacks_match_pool_groups() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = build_micro_vgg19(&MicroVggConfig::cifar(10), &mut rng);
        let stack_of = |name: &str| {
            net.targets()
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.stack)
                .unwrap()
        };
        assert_eq!(stack_of("conv1"), 0);
        assert_eq!(stack_of("conv3"), 1);
        assert_eq!(stack_of("conv16"), 4);
        assert_eq!(stack_of("classifier"), 5);
    }
}
