use super::Registry;
use crate::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu, Residual, Sequential};
use crate::Network;
use cuttlefish_tensor::im2col::ConvGeometry;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the micro ResNet family.
///
/// Matches the paper's Table 6 topology (4 stacks, strides 1,2,2,2, stem
/// 3×3 conv for small inputs, no biases except the classifier) with widths
/// and resolution scaled down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroResNetConfig {
    /// Input channels (3 for RGB-like synthetic tasks).
    pub in_channels: usize,
    /// Input resolution.
    pub image_hw: (usize, usize),
    /// Width of the first stack; later stacks double it.
    pub base_width: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Blocks per stack (ResNet-18 is `[2,2,2,2]`, ResNet-50 `[3,4,6,3]`).
    pub blocks: [usize; 4],
    /// Use bottleneck blocks (ResNet-50/WRN) instead of basic blocks.
    pub bottleneck: bool,
    /// Multiplier on the bottleneck inner width (2.0 for WideResNet-50-2).
    pub width_mult: f32,
}

impl MicroResNetConfig {
    /// Smallest usable config, for unit tests: 8×8 inputs, width 8, one
    /// block per stack.
    pub fn tiny(num_classes: usize) -> Self {
        MicroResNetConfig {
            in_channels: 3,
            image_hw: (8, 8),
            base_width: 8,
            num_classes,
            blocks: [1, 1, 1, 1],
            bottleneck: false,
            width_mult: 1.0,
        }
    }

    /// CIFAR-scale ResNet-18 analog: 16×16 inputs, width 12, 2 blocks per
    /// stack (width tuned so a full table run fits a single CPU core).
    pub fn cifar(num_classes: usize) -> Self {
        MicroResNetConfig {
            in_channels: 3,
            image_hw: (16, 16),
            base_width: 12,
            num_classes,
            blocks: [2, 2, 2, 2],
            bottleneck: false,
            width_mult: 1.0,
        }
    }

    /// ImageNet-scale ResNet-50 analog (bottlenecks, expansion 4).
    pub fn imagenet50(num_classes: usize) -> Self {
        MicroResNetConfig {
            in_channels: 3,
            image_hw: (16, 16),
            base_width: 8,
            num_classes,
            blocks: [2, 2, 3, 2],
            bottleneck: true,
            width_mult: 1.0,
        }
    }

    /// WideResNet-50-2 analog: bottlenecks with doubled inner width.
    pub fn imagenet_wide50(num_classes: usize) -> Self {
        let mut cfg = Self::imagenet50(num_classes);
        cfg.width_mult = 2.0;
        cfg
    }
}

struct Builder<'a, R: Rng> {
    rng: &'a mut R,
    reg: Registry,
    hw: (usize, usize),
}

impl<'a, R: Rng> Builder<'a, R> {
    fn conv(
        &mut self,
        name: &str,
        stack: usize,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
    ) -> Conv2d {
        let geom = ConvGeometry {
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride,
            padding: k / 2,
        };
        self.reg.conv(name, stack, in_c, out_c, k, stride, self.hw);
        Conv2d::new(name, geom, false, self.rng)
    }

    fn advance_spatial(&mut self, stride: usize) {
        self.hw = (self.hw.0.div_ceil(stride), self.hw.1.div_ceil(stride));
    }

    fn basic_block(
        &mut self,
        name: &str,
        stack: usize,
        in_c: usize,
        out_c: usize,
        stride: usize,
    ) -> Sequential {
        let mut body = Sequential::new(format!("{name}.body"));
        body.add(Box::new(self.conv(
            &format!("{name}.conv1"),
            stack,
            in_c,
            out_c,
            3,
            stride,
        )));
        let entry_hw = self.hw;
        self.advance_spatial(stride);
        body.add(Box::new(BatchNorm2d::new(format!("{name}.bn1"), out_c)));
        body.add(Box::new(Relu::new(format!("{name}.relu1"))));
        body.add(Box::new(self.conv(
            &format!("{name}.conv2"),
            stack,
            out_c,
            out_c,
            3,
            1,
        )));
        body.add(Box::new(BatchNorm2d::new(format!("{name}.bn2"), out_c)));

        let res = if stride != 1 || in_c != out_c {
            // Projection shortcut: strided 1×1 conv + BN.
            let saved = self.hw;
            self.hw = entry_hw;
            let mut short = Sequential::new(format!("{name}.short"));
            short.add(Box::new(self.conv(
                &format!("{name}.down"),
                stack,
                in_c,
                out_c,
                1,
                stride,
            )));
            short.add(Box::new(BatchNorm2d::new(format!("{name}.dbn"), out_c)));
            self.hw = saved;
            Residual::with_shortcut(name, body, short)
        } else {
            Residual::new(name, body)
        };
        Sequential::new(format!("{name}.outer"))
            .push(res)
            .push(Relu::new(format!("{name}.relu_out")))
    }

    fn bottleneck_block(
        &mut self,
        name: &str,
        stack: usize,
        in_c: usize,
        planes: usize,
        stride: usize,
        width_mult: f32,
    ) -> Sequential {
        let width = ((planes as f32 * width_mult).round() as usize).max(1);
        let out_c = planes * 4;
        let mut body = Sequential::new(format!("{name}.body"));
        body.add(Box::new(self.conv(
            &format!("{name}.conv1"),
            stack,
            in_c,
            width,
            1,
            1,
        )));
        body.add(Box::new(BatchNorm2d::new(format!("{name}.bn1"), width)));
        body.add(Box::new(Relu::new(format!("{name}.relu1"))));
        body.add(Box::new(self.conv(
            &format!("{name}.conv2"),
            stack,
            width,
            width,
            3,
            stride,
        )));
        let entry_hw = self.hw;
        self.advance_spatial(stride);
        body.add(Box::new(BatchNorm2d::new(format!("{name}.bn2"), width)));
        body.add(Box::new(Relu::new(format!("{name}.relu2"))));
        body.add(Box::new(self.conv(
            &format!("{name}.conv3"),
            stack,
            width,
            out_c,
            1,
            1,
        )));
        body.add(Box::new(BatchNorm2d::new(format!("{name}.bn3"), out_c)));

        let res = if stride != 1 || in_c != out_c {
            let saved = self.hw;
            self.hw = entry_hw;
            let mut short = Sequential::new(format!("{name}.short"));
            short.add(Box::new(self.conv(
                &format!("{name}.down"),
                stack,
                in_c,
                out_c,
                1,
                stride,
            )));
            short.add(Box::new(BatchNorm2d::new(format!("{name}.dbn"), out_c)));
            self.hw = saved;
            Residual::with_shortcut(name, body, short)
        } else {
            Residual::new(name, body)
        };
        Sequential::new(format!("{name}.outer"))
            .push(res)
            .push(Relu::new(format!("{name}.relu_out")))
    }
}

fn build(name: &str, cfg: &MicroResNetConfig, rng: &mut impl Rng) -> Network {
    let mut b = Builder {
        rng,
        reg: Registry::new(),
        hw: cfg.image_hw,
    };
    let mut root = Sequential::new(name.to_string());
    // Stem: 3×3 stride-1 conv (the paper's CIFAR adjustment, Table 6).
    root.add(Box::new(b.conv(
        "conv1",
        0,
        cfg.in_channels,
        cfg.base_width,
        3,
        1,
    )));
    root.add(Box::new(BatchNorm2d::new("bn1", cfg.base_width)));
    root.add(Box::new(Relu::new("relu1")));

    let expansion = if cfg.bottleneck { 4 } else { 1 };
    let mut in_c = cfg.base_width;
    for (si, &nblocks) in cfg.blocks.iter().enumerate() {
        let stack = si + 1;
        let planes = cfg.base_width << si;
        for bi in 0..nblocks {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            let bname = format!("s{stack}.b{bi}");
            let block = if cfg.bottleneck {
                b.bottleneck_block(&bname, stack, in_c, planes, stride, cfg.width_mult)
            } else {
                b.basic_block(&bname, stack, in_c, planes, stride)
            };
            root.add(Box::new(block));
            in_c = planes * expansion;
        }
    }
    root.add(Box::new(GlobalAvgPool::new("gap")));
    b.reg.linear("fc", 5, in_c, cfg.num_classes, 1, false);
    let fc = Linear::new("fc", in_c, cfg.num_classes, true, b.rng);
    root.add(Box::new(fc));
    let targets = b.reg.finish();
    let mut net =
        Network::new(name, root, targets).expect("builder registers every target it creates");
    net.set_input_shape(crate::SymShape::Image {
        channels: cfg.in_channels,
        height: cfg.image_hw.0,
        width: cfg.image_hw.1,
    });
    net
}

/// Builds a micro ResNet-18 (basic blocks).
pub fn build_micro_resnet18(cfg: &MicroResNetConfig, rng: &mut impl Rng) -> Network {
    build("micro-resnet18", cfg, rng)
}

/// Builds a micro ResNet-50 (bottleneck blocks); sets `bottleneck = true`
/// on the given config.
pub fn build_micro_resnet50(cfg: &MicroResNetConfig, rng: &mut impl Rng) -> Network {
    let mut cfg = cfg.clone();
    cfg.bottleneck = true;
    build("micro-resnet50", &cfg, rng)
}

/// Builds a micro WideResNet-50-2 analog (bottlenecks, doubled inner
/// width).
pub fn build_micro_wide_resnet50(cfg: &MicroResNetConfig, rng: &mut impl Rng) -> Network {
    let mut cfg = cfg.clone();
    cfg.bottleneck = true;
    if cfg.width_mult < 2.0 {
        cfg.width_mult = 2.0;
    }
    build("micro-wideresnet50", &cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Mode};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet18_tiny_forward_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MicroResNetConfig::tiny(10);
        let mut net = build_micro_resnet18(&cfg, &mut rng);
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut rng),
            3,
            8,
            8,
        )
        .unwrap();
        let y = net.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().shape(), (2, 10));
        let dx = net.backward(Act::flat(Matrix::zeros(2, 10))).unwrap();
        assert_eq!(dx.data().shape(), (2, 3 * 64));
    }

    #[test]
    fn resnet18_target_count_matches_paper_structure() {
        // ResNet-18 shape: stem + 2 convs × 8 blocks + 3 downsamples + fc.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MicroResNetConfig::cifar(10);
        let net = build_micro_resnet18(&cfg, &mut rng);
        let convs = net
            .targets()
            .iter()
            .filter(|t| matches!(t.kind, crate::TargetKind::Conv { .. }))
            .count();
        assert_eq!(convs, 1 + 16 + 3);
        assert_eq!(net.targets().len(), 1 + 16 + 3 + 1);
        // Depth indices are 1..=L in order.
        for (i, t) in net.targets().iter().enumerate() {
            assert_eq!(t.index, i + 1);
        }
        // Last target is the classifier.
        assert_eq!(net.targets().last().unwrap().name, "fc");
    }

    #[test]
    fn stacks_have_decreasing_spatial_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MicroResNetConfig::cifar(10);
        let net = build_micro_resnet18(&cfg, &mut rng);
        let hw_of = |name: &str| {
            net.targets()
                .iter()
                .find(|t| t.name == name)
                .map(|t| match t.kind {
                    crate::TargetKind::Conv { in_hw, .. } => in_hw,
                    _ => unreachable!(),
                })
                .unwrap()
        };
        assert_eq!(hw_of("s1.b0.conv1"), (16, 16));
        assert_eq!(hw_of("s2.b0.conv1"), (16, 16)); // stride-2 conv sees full input
        assert_eq!(hw_of("s2.b1.conv1"), (8, 8));
        assert_eq!(hw_of("s4.b1.conv1"), (2, 2));
    }

    #[test]
    fn resnet50_uses_bottlenecks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = MicroResNetConfig::tiny(10);
        cfg.blocks = [1, 1, 1, 1];
        let mut net = build_micro_resnet50(&cfg, &mut rng);
        // Bottleneck: 3 convs per block + downsample on every stack
        // (expansion changes channel counts) + stem + fc.
        let convs = net
            .targets()
            .iter()
            .filter(|t| matches!(t.kind, crate::TargetKind::Conv { .. }))
            .count();
        assert_eq!(convs, 1 + 4 * 3 + 4);
        let x = Act::image(Matrix::zeros(1, 3 * 64), 3, 8, 8).unwrap();
        let y = net.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().shape(), (1, 10));
    }

    #[test]
    fn wide_resnet_has_more_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = MicroResNetConfig::tiny(10);
        let mut narrow = build_micro_resnet50(&cfg, &mut rng);
        let mut wide = build_micro_wide_resnet50(&cfg, &mut rng);
        assert!(wide.param_count() > narrow.param_count());
    }

    #[test]
    fn eval_deterministic_after_train() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = MicroResNetConfig::tiny(4);
        let mut net = build_micro_resnet18(&cfg, &mut rng);
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 64, 1.0, &mut rng),
            3,
            8,
            8,
        )
        .unwrap();
        let y1 = net.forward(x.clone(), Mode::Eval).unwrap();
        let y2 = net.forward(x, Mode::Eval).unwrap();
        assert_eq!(y1.data(), y2.data());
    }
}
