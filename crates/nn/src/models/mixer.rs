use super::Registry;
use crate::layers::{
    Conv2d, Gelu, ImageToSeq, LayerNorm, Linear, Residual, SeqMeanPool, Sequential, TokenTranspose,
};
use crate::Network;
use cuttlefish_tensor::im2col::ConvGeometry;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the micro ResMLP/MLP-Mixer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroMixerConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input resolution.
    pub image_hw: (usize, usize),
    /// Patch size.
    pub patch: usize,
    /// Channel dimension.
    pub dim: usize,
    /// Number of mixer blocks.
    pub depth: usize,
    /// Channel-MLP expansion ratio.
    pub mlp_ratio: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl MicroMixerConfig {
    /// Small testable config.
    pub fn tiny(num_classes: usize) -> Self {
        MicroMixerConfig {
            in_channels: 3,
            image_hw: (16, 16),
            patch: 4,
            dim: 16,
            depth: 2,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// ResMLP-S36 analog at micro scale (deeper).
    pub fn s36(num_classes: usize) -> Self {
        MicroMixerConfig {
            in_channels: 3,
            image_hw: (16, 16),
            patch: 4,
            dim: 24,
            depth: 6,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// Number of tokens after patch embedding.
    pub fn tokens(&self) -> usize {
        (self.image_hw.0 / self.patch) * (self.image_hw.1 / self.patch)
    }
}

/// Builds a micro ResMLP: patch embedding, `depth` blocks of
/// token-mixing linear + channel MLP (LayerNorm substitutes the paper's
/// Affine normalization), mean-pool head.
pub fn build_micro_mixer(cfg: &MicroMixerConfig, rng: &mut impl Rng) -> Network {
    let mut reg = Registry::new();
    let mut root = Sequential::new("micro-resmlp");
    let tokens = cfg.tokens();

    let geom = ConvGeometry {
        in_channels: cfg.in_channels,
        out_channels: cfg.dim,
        kernel: cfg.patch,
        stride: cfg.patch,
        padding: 0,
    };
    reg.conv(
        "patch_embed",
        0,
        cfg.in_channels,
        cfg.dim,
        cfg.patch,
        cfg.patch,
        cfg.image_hw,
    );
    root.add(Box::new(Conv2d::new("patch_embed", geom, true, rng)));
    root.add(Box::new(ImageToSeq::new("to_seq")));

    for d in 0..cfg.depth {
        let name = format!("blk{d}");
        // Token-mixing sublayer: x + Tᵀ·Linear(T)·T applied across tokens.
        let mut tok = Sequential::new(format!("{name}.tokmix_body"));
        tok.add(Box::new(LayerNorm::new(format!("{name}.ln1"), cfg.dim)));
        tok.add(Box::new(TokenTranspose::new(format!("{name}.t1"))));
        reg.linear(format!("{name}.tokmix"), 1, tokens, tokens, cfg.dim, true);
        tok.add(Box::new(Linear::new(
            format!("{name}.tokmix"),
            tokens,
            tokens,
            true,
            rng,
        )));
        tok.add(Box::new(TokenTranspose::new(format!("{name}.t2"))));
        root.add(Box::new(Residual::new(format!("{name}.res1"), tok)));

        // Channel MLP sublayer.
        let hidden = cfg.dim * cfg.mlp_ratio;
        let mut mlp = Sequential::new(format!("{name}.mlp"));
        mlp.add(Box::new(LayerNorm::new(format!("{name}.ln2"), cfg.dim)));
        reg.linear(format!("{name}.fc1"), 1, cfg.dim, hidden, tokens, true);
        mlp.add(Box::new(Linear::new(
            format!("{name}.fc1"),
            cfg.dim,
            hidden,
            true,
            rng,
        )));
        mlp.add(Box::new(Gelu::new(format!("{name}.gelu"))));
        reg.linear(format!("{name}.fc2"), 1, hidden, cfg.dim, tokens, true);
        mlp.add(Box::new(Linear::new(
            format!("{name}.fc2"),
            hidden,
            cfg.dim,
            true,
            rng,
        )));
        root.add(Box::new(Residual::new(format!("{name}.res2"), mlp)));
    }
    root.add(Box::new(LayerNorm::new("ln_final", cfg.dim)));
    root.add(Box::new(SeqMeanPool::new("pool")));
    reg.linear("head", 2, cfg.dim, cfg.num_classes, 1, false);
    root.add(Box::new(Linear::new(
        "head",
        cfg.dim,
        cfg.num_classes,
        true,
        rng,
    )));
    let mut net = Network::new("micro-resmlp", root, reg.finish())
        .expect("builder registers every target it creates");
    net.set_input_shape(crate::SymShape::Image {
        channels: cfg.in_channels,
        height: cfg.image_hw.0,
        width: cfg.image_hw.1,
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Mode};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixer_forward_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MicroMixerConfig::tiny(10);
        let mut net = build_micro_mixer(&cfg, &mut rng);
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 256, 1.0, &mut rng),
            3,
            16,
            16,
        )
        .unwrap();
        let y = net.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().shape(), (2, 10));
        let dx = net.backward(Act::flat(Matrix::zeros(2, 10))).unwrap();
        assert_eq!(dx.data().shape(), (2, 3 * 256));
    }

    #[test]
    fn mixer_targets_per_block() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MicroMixerConfig::tiny(10);
        let net = build_micro_mixer(&cfg, &mut rng);
        // patch embed + depth × (tokmix + fc1 + fc2) + head.
        assert_eq!(net.targets().len(), 1 + cfg.depth * 3 + 1);
    }

    #[test]
    fn tokmix_weight_is_token_sized() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MicroMixerConfig::tiny(10);
        let mut net = build_micro_mixer(&cfg, &mut rng);
        let w = net.weight_matrix("blk0.tokmix").unwrap();
        assert_eq!(w.shape(), (cfg.tokens(), cfg.tokens()));
    }
}
