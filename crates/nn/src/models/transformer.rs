use super::Registry;
use crate::layers::{
    Conv2d, Gelu, ImageToSeq, LayerNorm, Linear, MultiHeadAttention, PosEmbedding, Residual,
    SeqMeanPool, Sequential,
};
use crate::Network;
use cuttlefish_tensor::im2col::ConvGeometry;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the micro DeiT (vision transformer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroDeiTConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input resolution.
    pub image_hw: (usize, usize),
    /// Patch size (stride of the embedding conv).
    pub patch: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Number of encoder blocks.
    pub depth: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// FFN expansion ratio.
    pub mlp_ratio: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl MicroDeiTConfig {
    /// Small testable config: 16×16 images, patch 4 → 16 tokens, dim 16.
    pub fn tiny(num_classes: usize) -> Self {
        MicroDeiTConfig {
            in_channels: 3,
            image_hw: (16, 16),
            patch: 4,
            dim: 16,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// DeiT-base analog at micro scale: deeper and wider than `tiny`.
    pub fn base(num_classes: usize) -> Self {
        MicroDeiTConfig {
            in_channels: 3,
            image_hw: (16, 16),
            patch: 4,
            dim: 32,
            depth: 4,
            heads: 4,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// Number of tokens after patch embedding.
    pub fn tokens(&self) -> usize {
        (self.image_hw.0 / self.patch) * (self.image_hw.1 / self.patch)
    }
}

/// Appends one pre-LN transformer encoder block to `root`, registering its
/// six factorizable projections (`wq, wk, wv, wo, fc1, fc2`).
#[allow(clippy::too_many_arguments)] // one knob per architectural dim
pub(crate) fn push_encoder_block(
    root: &mut Sequential,
    reg: &mut Registry,
    name: &str,
    stack: usize,
    dim: usize,
    heads: usize,
    mlp_ratio: usize,
    tokens: usize,
    rng: &mut impl Rng,
) {
    // Attention sublayer: x + MHA(LN(x)).
    let mut attn_body = Sequential::new(format!("{name}.attn_body"));
    attn_body.add(Box::new(LayerNorm::new(format!("{name}.ln1"), dim)));
    let mha = MultiHeadAttention::new(format!("{name}.attn"), dim, heads, rng);
    for proj in ["wq", "wk", "wv", "wo"] {
        reg.linear(format!("{name}.attn.{proj}"), stack, dim, dim, tokens, true);
    }
    attn_body.add(Box::new(mha));
    root.add(Box::new(Residual::new(format!("{name}.res1"), attn_body)));

    // FFN sublayer: x + FC2(GELU(FC1(LN(x)))).
    let hidden = dim * mlp_ratio;
    let mut ffn = Sequential::new(format!("{name}.ffn"));
    ffn.add(Box::new(LayerNorm::new(format!("{name}.ln2"), dim)));
    reg.linear(format!("{name}.fc1"), stack, dim, hidden, tokens, true);
    ffn.add(Box::new(Linear::new(
        format!("{name}.fc1"),
        dim,
        hidden,
        true,
        rng,
    )));
    ffn.add(Box::new(Gelu::new(format!("{name}.gelu"))));
    reg.linear(format!("{name}.fc2"), stack, hidden, dim, tokens, true);
    ffn.add(Box::new(Linear::new(
        format!("{name}.fc2"),
        hidden,
        dim,
        true,
        rng,
    )));
    root.add(Box::new(Residual::new(format!("{name}.res2"), ffn)));
}

/// Builds a micro DeiT: strided-conv patch embedding, learned positional
/// embeddings, `depth` pre-LN encoder blocks, mean-pool classification head
/// (a substitution for the paper's class token that preserves the
/// factorizable structure).
pub fn build_micro_deit(cfg: &MicroDeiTConfig, rng: &mut impl Rng) -> Network {
    let mut reg = Registry::new();
    let mut root = Sequential::new("micro-deit");
    let tokens = cfg.tokens();

    let geom = ConvGeometry {
        in_channels: cfg.in_channels,
        out_channels: cfg.dim,
        kernel: cfg.patch,
        stride: cfg.patch,
        padding: 0,
    };
    // The embedding conv is registered (it is a conv layer like any other)
    // but Cuttlefish keeps K = 1 for transformers, so it is never
    // factorized (§3.5).
    reg.conv(
        "patch_embed",
        0,
        cfg.in_channels,
        cfg.dim,
        cfg.patch,
        cfg.patch,
        cfg.image_hw,
    );
    root.add(Box::new(Conv2d::new("patch_embed", geom, true, rng)));
    root.add(Box::new(ImageToSeq::new("to_seq")));
    root.add(Box::new(PosEmbedding::new("pos", tokens, cfg.dim, rng)));

    for d in 0..cfg.depth {
        push_encoder_block(
            &mut root,
            &mut reg,
            &format!("enc{d}"),
            1,
            cfg.dim,
            cfg.heads,
            cfg.mlp_ratio,
            tokens,
            rng,
        );
    }
    root.add(Box::new(LayerNorm::new("ln_final", cfg.dim)));
    root.add(Box::new(SeqMeanPool::new("pool")));
    reg.linear("head", 2, cfg.dim, cfg.num_classes, 1, false);
    root.add(Box::new(Linear::new(
        "head",
        cfg.dim,
        cfg.num_classes,
        true,
        rng,
    )));
    let mut net = Network::new("micro-deit", root, reg.finish())
        .expect("builder registers every target it creates");
    net.set_input_shape(crate::SymShape::Image {
        channels: cfg.in_channels,
        height: cfg.image_hw.0,
        width: cfg.image_hw.1,
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Mode, TargetKind};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deit_forward_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MicroDeiTConfig::tiny(10);
        let mut net = build_micro_deit(&cfg, &mut rng);
        let x = Act::image(
            cuttlefish_tensor::init::randn_matrix(2, 3 * 256, 1.0, &mut rng),
            3,
            16,
            16,
        )
        .unwrap();
        let y = net.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().shape(), (2, 10));
        let dx = net.backward(Act::flat(Matrix::zeros(2, 10))).unwrap();
        assert_eq!(dx.data().shape(), (2, 3 * 256));
    }

    #[test]
    fn deit_targets_cover_all_projections() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MicroDeiTConfig::tiny(10);
        let net = build_micro_deit(&cfg, &mut rng);
        // patch embed + depth × (4 attn + 2 ffn) + head.
        assert_eq!(net.targets().len(), 1 + cfg.depth * 6 + 1);
        let transformer_targets = net
            .targets()
            .iter()
            .filter(|t| {
                matches!(
                    t.kind,
                    TargetKind::Linear {
                        transformer: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(transformer_targets, cfg.depth * 6);
    }

    #[test]
    fn token_count_matches_config() {
        let cfg = MicroDeiTConfig::tiny(10);
        assert_eq!(cfg.tokens(), 16);
    }

    #[test]
    fn factorizing_encoder_weight_preserves_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MicroDeiTConfig::tiny(4);
        let mut net = build_micro_deit(&cfg, &mut rng);
        let w = net.weight_matrix("enc0.attn.wq").unwrap();
        let svd = cuttlefish_tensor::svd::Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(4).unwrap();
        net.factorize_target("enc0.attn.wq", u, vt, false, None)
            .unwrap();
        let x = Act::image(Matrix::zeros(1, 3 * 256), 3, 16, 16).unwrap();
        let y = net.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().shape(), (1, 4));
    }
}
