use super::transformer::push_encoder_block;
use super::Registry;
use crate::layers::{Embedding, LayerNorm, Linear, PosEmbedding, Sequential, TakeToken};
use crate::Network;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Head variant for the micro BERT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BertHead {
    /// Sequence classification from the first (`[CLS]`) token, used for
    /// GLUE fine-tuning (Table 4).
    Classification {
        /// Number of classes.
        classes: usize,
    },
    /// Masked-language-model head producing per-token vocabulary logits,
    /// used for pre-training (Table 17).
    MaskedLm,
}

/// Configuration for the micro BERT encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length.
    pub max_tokens: usize,
    /// Hidden dimension.
    pub dim: usize,
    /// Encoder blocks.
    pub depth: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN expansion ratio.
    pub mlp_ratio: usize,
    /// Head variant.
    pub head: BertHead,
}

impl MicroBertConfig {
    /// Small testable classification config.
    pub fn tiny(classes: usize) -> Self {
        MicroBertConfig {
            vocab: 32,
            max_tokens: 8,
            dim: 16,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            head: BertHead::Classification { classes },
        }
    }

    /// Small MLM pre-training config.
    pub fn tiny_mlm() -> Self {
        MicroBertConfig {
            vocab: 32,
            max_tokens: 8,
            dim: 16,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            head: BertHead::MaskedLm,
        }
    }
}

/// Builds a micro BERT: token + positional embeddings (never factorized,
/// matching the paper), `depth` pre-LN encoder blocks, and either a `[CLS]`
/// classification head or a per-token MLM head.
pub fn build_micro_bert(cfg: &MicroBertConfig, rng: &mut impl Rng) -> Network {
    let mut reg = Registry::new();
    let mut root = Sequential::new("micro-bert");
    root.add(Box::new(Embedding::new(
        "tok_embed",
        cfg.vocab,
        cfg.dim,
        rng,
    )));
    root.add(Box::new(PosEmbedding::new(
        "pos",
        cfg.max_tokens,
        cfg.dim,
        rng,
    )));
    for d in 0..cfg.depth {
        push_encoder_block(
            &mut root,
            &mut reg,
            &format!("enc{d}"),
            1,
            cfg.dim,
            cfg.heads,
            cfg.mlp_ratio,
            cfg.max_tokens,
            rng,
        );
    }
    root.add(Box::new(LayerNorm::new("ln_final", cfg.dim)));
    match cfg.head {
        BertHead::Classification { classes } => {
            root.add(Box::new(TakeToken::new("cls", 0)));
            reg.linear("cls_head", 2, cfg.dim, classes, 1, false);
            root.add(Box::new(Linear::new(
                "cls_head", cfg.dim, classes, true, rng,
            )));
        }
        BertHead::MaskedLm => {
            reg.linear("mlm_head", 2, cfg.dim, cfg.vocab, cfg.max_tokens, false);
            root.add(Box::new(Linear::new(
                "mlm_head", cfg.dim, cfg.vocab, true, rng,
            )));
        }
    }
    let mut net = Network::new("micro-bert", root, reg.finish())
        .expect("builder registers every target it creates");
    // BERT consumes a flat (B, T) matrix of token ids.
    net.set_input_shape(crate::SymShape::Flat {
        features: cfg.max_tokens,
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Mode};
    use cuttlefish_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn token_batch(b: usize, t: usize, vocab: usize) -> Act {
        Act::flat(Matrix::from_fn(b, t, |i, j| {
            ((i * 7 + j * 3) % vocab) as f32
        }))
    }

    #[test]
    fn bert_classification_forward_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MicroBertConfig::tiny(3);
        let mut net = build_micro_bert(&cfg, &mut rng);
        let x = token_batch(2, 8, cfg.vocab);
        let y = net.forward(x, Mode::Train).unwrap();
        assert_eq!(y.data().shape(), (2, 3));
        let dx = net.backward(Act::flat(Matrix::zeros(2, 3))).unwrap();
        // Token ids carry no gradient; shape is preserved.
        assert_eq!(dx.data().shape(), (2, 8));
    }

    #[test]
    fn bert_mlm_outputs_per_token_logits() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MicroBertConfig::tiny_mlm();
        let mut net = build_micro_bert(&cfg, &mut rng);
        let x = token_batch(2, 8, cfg.vocab);
        let y = net.forward(x, Mode::Eval).unwrap();
        assert_eq!(y.data().shape(), (16, 32));
        assert_eq!(y.expect_seq("t").unwrap(), (2, 8));
    }

    #[test]
    fn embeddings_are_not_factor_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MicroBertConfig::tiny(2);
        let net = build_micro_bert(&cfg, &mut rng);
        assert!(net.targets().iter().all(|t| !t.name.contains("embed")));
        // depth × 6 projections + head.
        assert_eq!(net.targets().len(), cfg.depth * 6 + 1);
    }
}
