#!/bin/bash
# Regenerates every paper table/figure from the prebuilt release binaries.
# Build first: cargo build --workspace --release
# Ordered so the headline tables complete first.
set -u
BINS="${BINS_OVERRIDE:-table1_cifar table19_svhn table2_imagenet table3_transformer \
table8_hyperparams fig1_grid_search table18_eb_grasp fig5_rank_selection \
table4_glue table17_bert_pretrain table13_fd_ablation table15_scaled_rank \
table5_extra_bn table12_sifd_rho fig8_imagenet_ranks table9_hyperparams_imagenet \
appendix_rank_trends ablation_tracker_window fig3_rank_heatmap fig9_singular_cdf \
fig2_rank_trajectories fig4_stack_profiling fig6_layerwise_cost overhead_accounting}"
for b in $BINS; do
  echo "=== running $b ==="
  start=$(date +%s)
  "target/release/$b" > "bench_results/logs/$b.log" 2>&1
  rc=$?
  echo "=== $b done (exit $rc, $(( $(date +%s) - start )) s) ==="
done
echo ALL_EXPERIMENTS_DONE
