//! Umbrella crate for the Cuttlefish reproduction workspace.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests under `tests/`. The actual library code
//! lives in the `crates/` workspace members; start with the `cuttlefish`
//! crate for the paper's core algorithm.

pub use cuttlefish;
pub use cuttlefish_baselines;
pub use cuttlefish_data;
pub use cuttlefish_nn;
pub use cuttlefish_perf;
pub use cuttlefish_tensor;
